// Mixed-integer linear model builder.
//
// This is the in-repo replacement for the Gurobi dependency of the paper:
// BIRP's per-slot problem (P1ᵗ/P2ᵗ after the Eq. 24 linearization) is built
// against this API and handed to the simplex / branch-and-bound solvers.
//
// The "quadratic" structure of the paper's program comes exclusively from
// products x·b of a binary and a bounded integer; `add_product` linearizes
// those exactly (McCormick envelope, which is tight for binary × bounded),
// so the whole program is solved as a MILP.
#pragma once

#include <limits>
#include <span>
#include <string>
#include <vector>

namespace birp::solver {

/// Variable integrality class.
enum class VarType { Continuous, Integer, Binary };

/// Constraint relation.
enum class Relation { LessEqual, GreaterEqual, Equal };

/// One term of a linear expression: coeff * var.
struct Term {
  int var = -1;
  double coeff = 0.0;
};

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// A linear constraint sum(terms) rel rhs.
struct Constraint {
  std::vector<Term> terms;
  Relation relation = Relation::LessEqual;
  double rhs = 0.0;
  std::string name;
};

/// Variable metadata.
struct VariableInfo {
  std::string name;
  double lower = 0.0;
  double upper = kInfinity;
  VarType type = VarType::Continuous;
  double objective = 0.0;
};

/// Minimization model over continuous / integer / binary variables with
/// linear constraints. Construction is append-only; solvers read it const.
class Model {
 public:
  /// Adds a variable; returns its index. `lower` must be finite (the simplex
  /// implementation requires finite lower bounds; all BIRP variables are
  /// naturally nonnegative).
  int add_variable(std::string name, double lower, double upper, VarType type);

  int add_continuous(std::string name, double lower, double upper) {
    return add_variable(std::move(name), lower, upper, VarType::Continuous);
  }
  int add_integer(std::string name, double lower, double upper) {
    return add_variable(std::move(name), lower, upper, VarType::Integer);
  }
  int add_binary(std::string name) {
    return add_variable(std::move(name), 0.0, 1.0, VarType::Binary);
  }

  /// Sets the minimization objective coefficient of `var`.
  void set_objective(int var, double coeff);

  /// Adds sum(terms) rel rhs; returns the constraint index. Terms referring
  /// to the same variable are combined.
  int add_constraint(std::span<const Term> terms, Relation relation,
                     double rhs, std::string name = {});
  int add_constraint(std::initializer_list<Term> terms, Relation relation,
                     double rhs, std::string name = {});

  /// Introduces z = binary_var * int_var exactly, where int_var has bounds
  /// [0, U] with finite U. Returns the index of z (a continuous variable
  /// whose integrality follows from the two factors). Adds:
  ///   z <= U * x,   z <= b,   z >= b - U * (1 - x),   z >= 0.
  int add_product(int binary_var, int int_var, std::string name = {});

  [[nodiscard]] int num_variables() const noexcept {
    return static_cast<int>(variables_.size());
  }
  [[nodiscard]] int num_constraints() const noexcept {
    return static_cast<int>(constraints_.size());
  }
  [[nodiscard]] const VariableInfo& variable(int index) const;
  [[nodiscard]] const Constraint& constraint(int index) const;
  [[nodiscard]] const std::vector<VariableInfo>& variables() const noexcept {
    return variables_;
  }
  [[nodiscard]] const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }

  /// True when any variable is Integer or Binary.
  [[nodiscard]] bool has_integers() const noexcept { return integer_count_ > 0; }

  /// Evaluates the objective at `values` (size must match variables).
  [[nodiscard]] double objective_value(std::span<const double> values) const;

  /// Maximum constraint violation of `values`; 0 when feasible w.r.t. the
  /// linear constraints and variable bounds (ignores integrality).
  [[nodiscard]] double max_violation(std::span<const double> values) const;

  /// Maximum distance from integrality over Integer/Binary variables.
  [[nodiscard]] double max_integrality_violation(
      std::span<const double> values) const;

 private:
  std::vector<VariableInfo> variables_;
  std::vector<Constraint> constraints_;
  int integer_count_ = 0;
};

}  // namespace birp::solver
