// Shared solve result types for the LP and MILP solvers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace birp::solver {

/// Simplex status of one column: in the basis, or resting at a bound.
enum class VarState : std::uint8_t { Basic, AtLower, AtUpper };

/// Compact snapshot of an optimal simplex basis, used to warm-start later
/// solves of structurally identical problems (branch-and-bound children,
/// consecutive scheduling slots). Layout-independent: slack columns are
/// identified by their constraint row, not by tableau position.
struct Basis {
  /// State of each structural (model) variable. Slack states need no
  /// storage: a slack is either in `basic` or rests at its lower bound.
  std::vector<VarState> structural;
  /// Basic column per row: j in [0, n) is structural j; n + i is the slack
  /// of constraint i; -1 marks a degenerate row whose basic column was an
  /// artificial (re-created as a fixed zero column on warm start).
  std::vector<int> basic;

  [[nodiscard]] bool empty() const noexcept { return basic.empty(); }
  /// Shape check against a model with `num_vars` variables and `num_rows`
  /// constraints; warm starts are rejected (cold fallback) otherwise.
  [[nodiscard]] bool matches(int num_vars, int num_rows) const noexcept {
    return structural.size() == static_cast<std::size_t>(num_vars) &&
           basic.size() == static_cast<std::size_t>(num_rows);
  }
};

enum class SolveStatus {
  Optimal,         ///< proven optimal (within tolerances)
  Feasible,        ///< feasible incumbent returned, optimality not proven
  Infeasible,      ///< no feasible point exists
  Unbounded,       ///< objective unbounded below
  IterationLimit,  ///< budget exhausted without a feasible point
};

[[nodiscard]] std::string to_string(SolveStatus status);

struct Solution {
  SolveStatus status = SolveStatus::IterationLimit;
  double objective = 0.0;
  std::vector<double> values;  ///< one entry per model variable
  /// Constraint duals (shadow prices), one per model constraint, populated
  /// by solve_lp on Optimal only: duals[i] approximates d(objective)/d(rhs_i)
  /// at the optimum (for nondegenerate rows). Empty for MILP solves.
  std::vector<double> duals;

  /// Optimal basis snapshot for warm-starting a follow-up solve. Populated
  /// by solve_lp when asked (emit_basis) and the solve is Optimal; for MILP
  /// solves it holds the root relaxation's basis (the cross-slot seed).
  Basis basis;

  // Diagnostics.
  std::int64_t simplex_iterations = 0;  ///< total pivots across all LP solves
  std::int64_t nodes_explored = 0;      ///< branch-and-bound nodes (MILP only)
  double best_bound = 0.0;              ///< proven lower bound (MILP only)
  bool warm_started = false;       ///< LP: solved from a warm basis (no Phase I)
  std::int64_t factor_pivots = 0;  ///< eliminations spent refactorizing bases
  std::int64_t warm_lp_solves = 0;  ///< MILP: node LPs served by the warm path
  std::int64_t cold_lp_solves = 0;  ///< MILP: node LPs solved from scratch

  [[nodiscard]] bool usable() const noexcept {
    return status == SolveStatus::Optimal || status == SolveStatus::Feasible;
  }
};

inline std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Optimal: return "optimal";
    case SolveStatus::Feasible: return "feasible";
    case SolveStatus::Infeasible: return "infeasible";
    case SolveStatus::Unbounded: return "unbounded";
    case SolveStatus::IterationLimit: return "iteration_limit";
  }
  return "unknown";
}

}  // namespace birp::solver
