// Shared solve result types for the LP and MILP solvers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace birp::solver {

enum class SolveStatus {
  Optimal,         ///< proven optimal (within tolerances)
  Feasible,        ///< feasible incumbent returned, optimality not proven
  Infeasible,      ///< no feasible point exists
  Unbounded,       ///< objective unbounded below
  IterationLimit,  ///< budget exhausted without a feasible point
};

[[nodiscard]] std::string to_string(SolveStatus status);

struct Solution {
  SolveStatus status = SolveStatus::IterationLimit;
  double objective = 0.0;
  std::vector<double> values;  ///< one entry per model variable
  /// Constraint duals (shadow prices), one per model constraint, populated
  /// by solve_lp on Optimal only: duals[i] approximates d(objective)/d(rhs_i)
  /// at the optimum (for nondegenerate rows). Empty for MILP solves.
  std::vector<double> duals;

  // Diagnostics.
  std::int64_t simplex_iterations = 0;  ///< total pivots across all LP solves
  std::int64_t nodes_explored = 0;      ///< branch-and-bound nodes (MILP only)
  double best_bound = 0.0;              ///< proven lower bound (MILP only)

  [[nodiscard]] bool usable() const noexcept {
    return status == SolveStatus::Optimal || status == SolveStatus::Feasible;
  }
};

inline std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Optimal: return "optimal";
    case SolveStatus::Feasible: return "feasible";
    case SolveStatus::Infeasible: return "infeasible";
    case SolveStatus::Unbounded: return "unbounded";
    case SolveStatus::IterationLimit: return "iteration_limit";
  }
  return "unknown";
}

}  // namespace birp::solver
