// Internal glue between the public solve_lp API and the two LP engines.
//
// Each engine (RevisedSimplex in simplex.cpp, DenseTableau in
// dense_tableau.cpp) implements the same shape: a cold constructor, a warm
// constructor gated by warm_ok(), solve()/solve_warm(), and the diagnostic
// accessors. `solve_lp_with` is the one and only warm-attempt-then-cold
// accounting path, shared by both backends so the bookkeeping invariants
// cannot diverge:
//
//  - Exactly one of {warm, cold} serves each solve_lp call: the returned
//    Solution has warm_started == true iff the warm engine produced it, and
//    branch-and-bound counts warm_lp_solves/cold_lp_solves off that flag,
//    so a mismatched or singular seed basis increments cold_lp_solves once
//    and warm_lp_solves never.
//  - A failed warm attempt's work (iterations, factorization pivots) is
//    charged to the cold fallback's Solution exactly once — the wasted
//    counters are read once, after the attempt is abandoned, and added to
//    the fallback totals; nothing is read before the attempt resolves, so
//    there is no path that counts the same elimination twice.
#pragma once

#ifdef BIRP_LP_TRACE
#include <cstdio>
#endif
#include <optional>
#include <span>
#include <utility>

#include "birp/solver/model.hpp"
#include "birp/solver/simplex.hpp"
#include "birp/solver/solution.hpp"

namespace birp::solver {

/// Sparse revised simplex backend (the default; simplex.cpp).
[[nodiscard]] Solution solve_lp_revised(const Model& model,
                                        std::span<const double> lower,
                                        std::span<const double> upper,
                                        const SimplexOptions& options,
                                        const Basis* warm_start,
                                        bool emit_basis);

/// Dense tableau reference backend (dense_tableau.cpp).
[[nodiscard]] Solution solve_lp_dense(const Model& model,
                                      std::span<const double> lower,
                                      std::span<const double> upper,
                                      const SimplexOptions& options,
                                      const Basis* warm_start,
                                      bool emit_basis);

template <class Engine>
[[nodiscard]] Solution solve_lp_with(const Model& model,
                                     std::span<const double> lower,
                                     std::span<const double> upper,
                                     const SimplexOptions& options,
                                     const Basis* warm_start,
                                     bool emit_basis) {
  for (std::size_t j = 0; j < lower.size(); ++j) {
    if (lower[j] > upper[j]) {
      Solution infeasible;
      infeasible.status = SolveStatus::Infeasible;
      return infeasible;
    }
  }

  // Attempt the warm path first; any rejection (shape mismatch, singular
  // basis, dual-infeasible start, stalled repair) falls through to the cold
  // two-phase solve, carrying the wasted work in the diagnostics.
  std::int64_t wasted_iterations = 0;
  std::int64_t wasted_factor_pivots = 0;
  if (warm_start != nullptr && !warm_start->empty() &&
      warm_start->matches(model.num_variables(), model.num_constraints())) {
    Engine engine(model, lower, upper, options, *warm_start);
    if (engine.warm_ok()) {
      if (auto solution = engine.solve_warm()) {
        if (emit_basis && solution->status == SolveStatus::Optimal) {
          solution->basis = engine.extract_basis();
        }
#ifdef BIRP_LP_TRACE
        std::fprintf(stderr, "LP warm iters=%lld status=%d obj=%.17g\n",
                     (long long)solution->simplex_iterations,
                     (int)solution->status, solution->objective);
#endif
        return *std::move(solution);
      }
    }
    wasted_iterations = engine.iterations();
    wasted_factor_pivots = engine.factor_pivots();
  }

  Engine engine(model, lower, upper, options);
  Solution solution = engine.solve();
  solution.simplex_iterations += wasted_iterations;
  solution.factor_pivots += wasted_factor_pivots;
  if (emit_basis && solution.status == SolveStatus::Optimal) {
    solution.basis = engine.extract_basis();
  }
#ifdef BIRP_LP_TRACE
  std::fprintf(stderr, "LP cold wasted=%lld iters=%lld status=%d obj=%.17g\n",
               (long long)wasted_iterations,
               (long long)solution.simplex_iterations, (int)solution.status,
               solution.objective);
#endif
  return solution;
}

}  // namespace birp::solver
