// Shared standard-form construction for the LP engines.
//
// Both simplex backends (the sparse revised simplex in simplex.cpp and the
// dense tableau reference in dense_tableau.cpp) solve the same standard
// form: columns ordered [structural | slack/surplus | artificial], rows
// flipped so every initial basic variable has coefficient +1. This module
// builds that form once — as a compressed-sparse-column snapshot plus the
// starting point — so the two backends cannot drift apart on layout, row
// orientation, or the Basis encoding.
//
// Two build modes mirror the two solve paths:
//  - cold: Phase I start. Inequality rows whose slack absorbs the residual
//    begin with the slack basic; every other row gets an artificial.
//  - warm: rebuild a caller Basis against the current bounds. Artificials
//    exist only as fixed [0,0] dual anchors for equality rows (and rows
//    whose recorded basic column was an artificial); Phase I never runs.
#pragma once

#include <span>
#include <vector>

#include "birp/solver/model.hpp"
#include "birp/solver/solution.hpp"

namespace birp::solver {

/// Standard-form snapshot: CSC matrix, bounds, starting point, and the
/// bookkeeping both engines share (dual anchors, row orientation signs).
struct StandardForm {
  int rows = 0;             ///< constraints m
  int cols = 0;             ///< structural + slack + artificial columns
  int structural = 0;       ///< model variables
  int artificial_begin = 0; ///< first artificial column index

  // CSC matrix of the full standard form (row flips applied). Row indices
  // within a column are strictly increasing.
  std::vector<int> col_start;   ///< size cols + 1
  std::vector<int> row_index;   ///< size nnz
  std::vector<double> values;   ///< size nnz

  std::vector<double> rhs;      ///< size rows (flips applied)
  std::vector<double> lower;    ///< per column
  std::vector<double> upper;    ///< per column
  std::vector<VarState> state;  ///< starting state per column
  std::vector<double> value;    ///< starting value per column
  std::vector<int> basis;       ///< starting basic column per row (cold only;
                                ///< -1 per row on the warm path until the
                                ///< caller factorizes `basic_cols`)
  std::vector<int> dual_col;    ///< slack/artificial anchoring row i's dual
  std::vector<double> dual_sign;///< cumulative row flips vs model orientation
  std::vector<int> slack_row;   ///< slack/artificial column -> row (-1 else)

  /// Warm path only: the decoded basic column of each row of the caller's
  /// Basis, in Basis row order. Empty on the cold path.
  std::vector<int> basic_cols;

  // Scale statistics for relative tolerances (see simplex.hpp): per-column
  // infinity norm of the standard-form matrix and the rhs infinity norm.
  // Absolute cutoffs (1e-12 tie windows, the 1e-6 Phase-I infeasibility
  // threshold) misfire once coefficients leave the O(1) range; every
  // tolerance comparison in the engines is scaled by these.
  std::vector<double> col_scale;
  double rhs_scale = 0.0;

  /// Warm build validity: false when the recorded basis is malformed
  /// (out-of-range entry, slack of an equality row, duplicate column).
  /// The cold build is always ok.
  bool ok = false;

  [[nodiscard]] int column_nnz(int j) const noexcept {
    return col_start[static_cast<std::size_t>(j) + 1] -
           col_start[static_cast<std::size_t>(j)];
  }
};

/// Cold build: Phase I starting basis. `lower_override`/`upper_override`
/// are the branch-and-bound bound overrides (empty means model bounds).
[[nodiscard]] StandardForm build_standard_form(
    const Model& model, std::span<const double> lower_override,
    std::span<const double> upper_override);

/// Warm build from a recorded basis. Check `.ok`; when false the caller
/// must fall back to the cold path. `warm` must already shape-match.
[[nodiscard]] StandardForm build_standard_form(
    const Model& model, std::span<const double> lower_override,
    std::span<const double> upper_override, const Basis& warm);

}  // namespace birp::solver
