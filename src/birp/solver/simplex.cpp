// Sparse revised simplex engine (the default LP backend) and the public
// solve_lp dispatcher. See simplex.hpp for the contract and
// dense_tableau.cpp for the dense reference engine.
#include "birp/solver/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "birp/solver/basis_lu.hpp"
#include "birp/solver/lp_engine.hpp"
#include "birp/solver/standard_form.hpp"
#include "birp/util/check.hpp"

namespace birp::solver {
namespace {

/// Relative tie window for ratio tests: two steps within this fraction of
/// each other are considered tied (Bland tie-breaks then apply). The
/// historical absolute 1e-12 window stopped meaning anything once steps
/// left the O(1) range.
constexpr double kRatioTie = 1e-11;

/// Tie margin for the dual-repair picks (leaving row, ratio window, pivot
/// magnitude). Wider than kRatioTie on purpose: the two LP engines compute
/// these quantities through different linear algebra (eta-file solves vs
/// in-place tableau updates), so near-ties carry ~1e-12 cross-engine noise.
/// A first-within-margin-wins pick keeps both engines on the same pivot
/// path, which is what keeps scheduler decisions bit-identical across
/// engines when alternate optima exist.
constexpr double kDualPickTie = 1e-9;

/// Revised simplex over the shared standard form. The basis inverse lives
/// in a BasisLu eta file; pricing recomputes duals/reduced costs from
/// BTRAN each iteration (self-correcting, O(nnz)), the ratio test FTRANs
/// the entering column, and every pivot appends one product-form eta with
/// scheduled refactorization. The solve drivers (Phase I/II, warm repair)
/// mirror the dense engine step for step so statuses and objectives match.
class RevisedSimplex {
 public:
  RevisedSimplex(const Model& model, std::span<const double> lower_override,
                 std::span<const double> upper_override,
                 SimplexOptions options)
      : model_(model),
        options_(options),
        form_(build_standard_form(model, lower_override, upper_override)) {
    init();
    lu_.reset_identity(form_.rows);
    // Cold start: every initial basic column is a unit vector after the
    // row flips, so the basis is the identity and needs no factorization.
  }

  /// Warm construction from a prior basis; check warm_ok() before solving.
  RevisedSimplex(const Model& model, std::span<const double> lower_override,
                 std::span<const double> upper_override, SimplexOptions options,
                 const Basis& warm)
      : model_(model),
        options_(options),
        form_(build_standard_form(model, lower_override, upper_override,
                                  warm)) {
    if (!form_.ok) return;
    init();
    if (!lu_.factorize(form_, form_.basic_cols, options_.pivot_tolerance,
                       options_.lu_pivot_threshold, form_.basis)) {
      return;  // singular: cold fallback
    }
    recompute_basic_values();
    warm_ok_ = true;
  }

  Solution solve();
  /// Warm solve: dual repair + Phase II. nullopt asks the caller to fall
  /// back to the cold path (stalled repair or dual-infeasible start).
  std::optional<Solution> solve_warm();

  [[nodiscard]] bool warm_ok() const noexcept { return warm_ok_; }
  [[nodiscard]] Basis extract_basis() const;
  [[nodiscard]] std::int64_t iterations() const noexcept { return iterations_; }
  [[nodiscard]] std::int64_t factor_pivots() const noexcept {
    return lu_.factor_pivots();
  }

 private:
  enum class Repair { Done, Infeasible, GiveUp };

  void init() {
    iteration_limit_ =
        options_.max_iterations > 0
            ? options_.max_iterations
            : 200 + 30ll * (form_.rows + form_.cols);
    y_.assign(static_cast<std::size_t>(form_.rows), 0.0);
    cb_.assign(static_cast<std::size_t>(form_.rows), 0.0);
    alpha_.assign(static_cast<std::size_t>(form_.rows), 0.0);
    work_.assign(static_cast<std::size_t>(form_.rows), 0.0);
    row_alpha_.assign(static_cast<std::size_t>(form_.cols), 0.0);
    row_ratio_.assign(static_cast<std::size_t>(form_.cols), 0.0);
  }

  [[nodiscard]] double column_dot(int col,
                                  const std::vector<double>& vec) const {
    double sum = 0.0;
    for (int p = form_.col_start[static_cast<std::size_t>(col)];
         p < form_.col_start[static_cast<std::size_t>(col) + 1]; ++p) {
      sum += form_.values[static_cast<std::size_t>(p)] *
             vec[static_cast<std::size_t>(
                 form_.row_index[static_cast<std::size_t>(p)])];
    }
    return sum;
  }

  /// y_ := B^{-T} c_B for the given costs (zero shortcut included).
  void compute_duals(const std::vector<double>& costs) {
    bool any_nonzero = false;
    for (int i = 0; i < form_.rows; ++i) {
      const double cb =
          costs[static_cast<std::size_t>(form_.basis[static_cast<std::size_t>(i)])];
      cb_[static_cast<std::size_t>(i)] = cb;
      any_nonzero = any_nonzero || cb != 0.0;
    }
    if (!any_nonzero) {
      std::fill(y_.begin(), y_.end(), 0.0);
      return;
    }
    std::copy(cb_.begin(), cb_.end(), y_.begin());
    lu_.btran(y_);
  }

  /// alpha_ := B^{-1} A(:, col).
  void ftran_column(int col) {
    std::fill(alpha_.begin(), alpha_.end(), 0.0);
    for (int p = form_.col_start[static_cast<std::size_t>(col)];
         p < form_.col_start[static_cast<std::size_t>(col) + 1]; ++p) {
      alpha_[static_cast<std::size_t>(
          form_.row_index[static_cast<std::size_t>(p)])] =
          form_.values[static_cast<std::size_t>(p)];
    }
    lu_.ftran(alpha_);
  }

  /// Rebuilds the eta file from the current basis and recomputes the basic
  /// values from scratch (clearing accumulated drift). False when the
  /// basis has become numerically singular.
  [[nodiscard]] bool refactorize() {
    basic_cols_scratch_.assign(form_.basis.begin(), form_.basis.end());
    if (!lu_.factorize(form_, basic_cols_scratch_, options_.pivot_tolerance,
                       options_.lu_pivot_threshold, form_.basis)) {
      return false;
    }
    recompute_basic_values();
    return true;
  }

  void recompute_basic_values() {
    // xB = B^{-1} (b - sum over nonbasic j with nonzero value of A(:,j) x_j).
    std::copy(form_.rhs.begin(), form_.rhs.end(), work_.begin());
    for (int j = 0; j < form_.cols; ++j) {
      if (form_.state[static_cast<std::size_t>(j)] == VarState::Basic) continue;
      const double v = form_.value[static_cast<std::size_t>(j)];
      if (v == 0.0) continue;
      for (int p = form_.col_start[static_cast<std::size_t>(j)];
           p < form_.col_start[static_cast<std::size_t>(j) + 1]; ++p) {
        work_[static_cast<std::size_t>(
            form_.row_index[static_cast<std::size_t>(p)])] -=
            form_.values[static_cast<std::size_t>(p)] * v;
      }
    }
    lu_.ftran(work_);
    for (int i = 0; i < form_.rows; ++i) {
      form_.value[static_cast<std::size_t>(
          form_.basis[static_cast<std::size_t>(i)])] =
          work_[static_cast<std::size_t>(i)];
    }
  }

  [[nodiscard]] std::vector<double> phase2_costs() const {
    std::vector<double> costs(static_cast<std::size_t>(form_.cols), 0.0);
    for (int j = 0; j < form_.structural; ++j) {
      costs[static_cast<std::size_t>(j)] = model_.variable(j).objective;
    }
    return costs;
  }

  /// Applies the basis change after the ratio test: updates the other
  /// basic values along alpha_, parks the leaving variable at its bound,
  /// swaps the entering column in, and appends the eta (refactorizing when
  /// the update pivot is unusable). False on numerical failure.
  [[nodiscard]] bool change_basis(int leave_row, int enter, double enter_dir,
                                  double step, bool leave_to_upper) {
    for (int i = 0; i < form_.rows; ++i) {
      if (i == leave_row) continue;
      const double a = alpha_[static_cast<std::size_t>(i)];
      if (a == 0.0) continue;
      const int bvar = form_.basis[static_cast<std::size_t>(i)];
      form_.value[static_cast<std::size_t>(bvar)] -= enter_dir * step * a;
    }
    const int leaving = form_.basis[static_cast<std::size_t>(leave_row)];
    form_.state[static_cast<std::size_t>(leaving)] =
        leave_to_upper ? VarState::AtUpper : VarState::AtLower;
    form_.value[static_cast<std::size_t>(leaving)] =
        leave_to_upper ? form_.upper[static_cast<std::size_t>(leaving)]
                       : form_.lower[static_cast<std::size_t>(leaving)];

    const double enter_value =
        form_.value[static_cast<std::size_t>(enter)] + enter_dir * step;
    form_.basis[static_cast<std::size_t>(leave_row)] = enter;
    form_.state[static_cast<std::size_t>(enter)] = VarState::Basic;
    form_.value[static_cast<std::size_t>(enter)] = enter_value;
    if (!lu_.update(alpha_, leave_row, options_.pivot_tolerance)) {
      return refactorize();
    }
    return true;
  }

  /// Flips the entering variable to its opposite bound without a basis
  /// change, shifting the basic values along alpha_.
  void bound_flip(int enter, double enter_dir, double step) {
    for (int i = 0; i < form_.rows; ++i) {
      const double a = alpha_[static_cast<std::size_t>(i)];
      if (a == 0.0) continue;
      const int bvar = form_.basis[static_cast<std::size_t>(i)];
      form_.value[static_cast<std::size_t>(bvar)] -= enter_dir * step * a;
    }
    auto& state = form_.state[static_cast<std::size_t>(enter)];
    if (enter_dir > 0.0) {
      state = VarState::AtUpper;
      form_.value[static_cast<std::size_t>(enter)] =
          form_.upper[static_cast<std::size_t>(enter)];
    } else {
      state = VarState::AtLower;
      form_.value[static_cast<std::size_t>(enter)] =
          form_.lower[static_cast<std::size_t>(enter)];
    }
  }

  SolveStatus iterate(const std::vector<double>& costs);
  Repair dual_repair(const std::vector<double>& costs);
  void finish(Solution& result, const std::vector<double>& costs);

  const Model& model_;
  SimplexOptions options_;
  StandardForm form_;
  BasisLu lu_;

  std::vector<double> y_;          // duals scratch (rows)
  std::vector<double> cb_;         // basic costs scratch (rows)
  std::vector<double> alpha_;      // FTRANed entering column (rows)
  std::vector<double> work_;       // basic-value recompute scratch (rows)
  std::vector<double> row_alpha_;  // BTRANed pivot row (cols; dual repair)
  std::vector<double> row_ratio_;  // dual ratios per column (dual repair)
  std::vector<int> basic_cols_scratch_;

  std::int64_t iterations_ = 0;
  std::int64_t iteration_limit_ = 0;
  bool warm_ok_ = false;
};

SolveStatus RevisedSimplex::iterate(const std::vector<double>& costs) {
  int stalled = 0;

  while (true) {
    if (++iterations_ > iteration_limit_) return SolveStatus::IterationLimit;
    if (lu_.should_refactorize(options_.refactor_interval) && !refactorize()) {
      return SolveStatus::IterationLimit;  // numerically singular basis
    }
    const bool bland = stalled >= options_.stall_threshold;

    // --- Pricing: pick an entering column with a profitable direction. ---
    compute_duals(costs);
    int enter = -1;
    double enter_dir = 0.0;
    double best_score = options_.tolerance;
    for (int j = 0; j < form_.cols; ++j) {
      const auto sj = form_.state[static_cast<std::size_t>(j)];
      if (sj == VarState::Basic) continue;
      const double lo = form_.lower[static_cast<std::size_t>(j)];
      const double hi = form_.upper[static_cast<std::size_t>(j)];
      if (lo == hi) continue;  // fixed (includes retired artificials)
      const double d = costs[static_cast<std::size_t>(j)] - column_dot(j, y_);
      double dir = 0.0;
      if (sj == VarState::AtLower && d < -options_.tolerance) dir = 1.0;
      if (sj == VarState::AtUpper && d > options_.tolerance) dir = -1.0;
      if (dir == 0.0) continue;
      if (bland) {
        enter = j;
        enter_dir = dir;
        break;
      }
      // Dantzig pricing with a first-wins margin: a later column must beat
      // the pick by kDualPickTie so near-tied reduced costs (symmetric apps
      // produce many) resolve to the same column in both engines despite
      // ~1e-12 cross-engine noise in d.
      if (std::abs(d) > best_score + kDualPickTie * (1.0 + best_score)) {
        best_score = std::abs(d);
        enter = j;
        enter_dir = dir;
      }
    }
    if (enter == -1) return SolveStatus::Optimal;

    // --- Ratio test on the FTRANed column: how far can it move? ---
    ftran_column(enter);
    double alpha_scale = 0.0;
    for (int i = 0; i < form_.rows; ++i) {
      alpha_scale =
          std::max(alpha_scale, std::abs(alpha_[static_cast<std::size_t>(i)]));
    }
    // Purely scale-relative: a uniformly tiny column (badly scaled slot
    // problems) still pivots on its relatively-large entries, while noise
    // entries of a large column stay ineligible. Zero columns skip rows
    // entirely (eligible == 0 with a <= comparison).
    const double eligible = options_.pivot_tolerance * alpha_scale;

    double t_best = form_.upper[static_cast<std::size_t>(enter)] -
                    form_.lower[static_cast<std::size_t>(enter)];
    int leave_row = -1;
    bool leave_to_upper = false;
    for (int i = 0; i < form_.rows; ++i) {
      const double alpha = enter_dir * alpha_[static_cast<std::size_t>(i)];
      if (std::abs(alpha) <= eligible) continue;
      const int bvar = form_.basis[static_cast<std::size_t>(i)];
      const double xv = form_.value[static_cast<std::size_t>(bvar)];
      double t = kInfinity;
      bool to_upper = false;
      if (alpha > 0.0) {  // basic variable decreases toward its lower bound
        t = (xv - form_.lower[static_cast<std::size_t>(bvar)]) / alpha;
      } else {  // basic variable increases toward its upper bound
        const double hi = form_.upper[static_cast<std::size_t>(bvar)];
        if (!std::isfinite(hi)) continue;
        t = (hi - xv) / (-alpha);
        to_upper = true;
      }
      t = std::max(t, 0.0);
      // Strictly smaller step wins (ties measured relative to the step
      // scale; zero while t_best is still the unbounded sentinel); under
      // Bland's rule, ties break toward the smallest basic variable index
      // to guarantee anti-cycling.
      const double tie =
          std::isfinite(t_best) ? kRatioTie * (1.0 + std::abs(t_best)) : 0.0;
      if (t < t_best - tie ||
          (bland && leave_row >= 0 && t <= t_best + tie &&
           bvar < form_.basis[static_cast<std::size_t>(leave_row)])) {
        t_best = t;
        leave_row = i;
        leave_to_upper = to_upper;
      }
    }

    if (!std::isfinite(t_best)) return SolveStatus::Unbounded;
    stalled = t_best <= options_.tolerance ? stalled + 1 : 0;

    if (leave_row == -1) {
      bound_flip(enter, enter_dir, t_best);
      continue;
    }
    if (!change_basis(leave_row, enter, enter_dir, t_best, leave_to_upper)) {
      return SolveStatus::IterationLimit;  // numerically singular basis
    }
  }
}

RevisedSimplex::Repair RevisedSimplex::dual_repair(
    const std::vector<double>& costs) {
  // Tight budget, separate from the global pivot limit: a genuinely warm
  // basis repairs in far fewer pivots than a cold solve takes, so once the
  // repair rivals a cold solve's cost (or cycles on degeneracy) it is
  // cheaper to give up early and fall back than to grind to the full limit.
  const std::int64_t repair_limit =
      std::min(iteration_limit_, iterations_ + form_.rows + 100);
  while (true) {
    if (++iterations_ > repair_limit) return Repair::GiveUp;
    if (lu_.should_refactorize(options_.refactor_interval) && !refactorize()) {
      return Repair::GiveUp;  // numerically singular basis: distrust it
    }

    // --- Leaving row: the basic variable with the largest bound violation.
    // sigma = +1 when it must decrease (above upper), -1 when it must
    // increase (below lower). A later row must beat the pick by the
    // kDualPickTie margin so that near-tied violations resolve to the same
    // (smallest) row in both engines.
    int leave_row = -1;
    double best_viol = options_.tolerance;
    double sigma = 0.0;
    for (int i = 0; i < form_.rows; ++i) {
      const int bvar = form_.basis[static_cast<std::size_t>(i)];
      const double v = form_.value[static_cast<std::size_t>(bvar)];
      const double above = v - form_.upper[static_cast<std::size_t>(bvar)];
      const double below = form_.lower[static_cast<std::size_t>(bvar)] - v;
      const double tie = kDualPickTie * (1.0 + best_viol);
      if (above > best_viol + tie) {
        best_viol = above;
        leave_row = i;
        sigma = 1.0;
      }
      if (below > best_viol + tie) {
        best_viol = below;
        leave_row = i;
        sigma = -1.0;
      }
    }
    if (leave_row < 0) return Repair::Done;  // primal feasible

    // --- Pivot row and reduced costs: rho = B^{-T} e_r gives the row of
    // B^{-1}A via sparse dots; the duals give d_j the same way.
    compute_duals(costs);
    std::fill(work_.begin(), work_.end(), 0.0);
    work_[static_cast<std::size_t>(leave_row)] = 1.0;
    lu_.btran(work_);
    double row_scale = 0.0;
    for (int j = 0; j < form_.cols; ++j) {
      if (form_.state[static_cast<std::size_t>(j)] == VarState::Basic) {
        continue;
      }
      const double alpha = column_dot(j, work_);
      row_alpha_[static_cast<std::size_t>(j)] = alpha;
      row_scale = std::max(row_scale, std::abs(alpha));
    }
    const double eligible = options_.pivot_tolerance * row_scale;

    // --- Entering candidates: a candidate must move the violating basic
    // variable toward its bound; its dual ratio |d_j / alpha| measures how
    // far the duals can move before that candidate's reduced cost changes
    // sign. The cascade below consumes candidates in ratio order (smallest
    // first, largest |alpha| among near-ties — under dual degeneracy many
    // candidates tie at ratio zero, and picking them by index admits
    // microscopic pivots). Ties in the |alpha| pick break to the smallest
    // column index (deterministic).
    bool any_candidate = false;
    for (int j = 0; j < form_.cols; ++j) {
      row_ratio_[static_cast<std::size_t>(j)] = kInfinity;
      const auto sj = form_.state[static_cast<std::size_t>(j)];
      if (sj == VarState::Basic) continue;
      if (form_.lower[static_cast<std::size_t>(j)] ==
          form_.upper[static_cast<std::size_t>(j)]) {
        continue;  // fixed (artificials)
      }
      const double alpha = row_alpha_[static_cast<std::size_t>(j)];
      if (std::abs(alpha) <= eligible) continue;
      if (sj == VarState::AtLower) {
        if (sigma * alpha <= 0.0) continue;  // moving up must shrink the violation
      } else {
        if (sigma * alpha >= 0.0) continue;  // moving down must shrink it
      }
      const double d = costs[static_cast<std::size_t>(j)] - column_dot(j, y_);
      row_ratio_[static_cast<std::size_t>(j)] =
          std::max(0.0, d / (sigma * alpha));
      any_candidate = true;
    }
    if (!any_candidate) {
      // No column can reduce the violation: this row proves the bounds
      // cannot be met (the dual is unbounded), i.e. the LP is infeasible.
      return Repair::Infeasible;
    }

    // --- Long-step flip cascade. Candidates whose step overshoots their box
    // are flipped (no basis change) and consumed; the cascade continues on
    // the same row until a candidate absorbs the rest of the violation with
    // a true basis change, or flips alone repair the row. Consuming flipped
    // candidates inside one ratio pass is what terminates: a zero-ratio flip
    // makes no dual progress, so without it two rows can trade the same
    // flip back and forth forever. Flips leave the basis — and therefore
    // every candidate's alpha and reduced cost — unchanged, so the ratios
    // computed above stay valid throughout the cascade.
    double remaining = best_viol;
    while (true) {
      double cur_best = kInfinity;
      for (int j = 0; j < form_.cols; ++j) {
        cur_best = std::min(cur_best, row_ratio_[static_cast<std::size_t>(j)]);
      }
      if (cur_best == kInfinity) return Repair::Infeasible;
      const double ratio_window = cur_best + kDualPickTie * (1.0 + cur_best);
      int enter = -1;
      double enter_dir = 0.0;
      double enter_alpha = 0.0;
      for (int j = 0; j < form_.cols; ++j) {
        if (row_ratio_[static_cast<std::size_t>(j)] > ratio_window) continue;
        const double a = std::abs(row_alpha_[static_cast<std::size_t>(j)]);
        if (a > enter_alpha * (1.0 + kDualPickTie)) {
          enter_alpha = a;
          enter = j;
          enter_dir =
              form_.state[static_cast<std::size_t>(j)] == VarState::AtLower
                  ? 1.0
                  : -1.0;
        }
      }
      if (enter < 0) return Repair::Infeasible;

      ftran_column(enter);
      const double alpha = alpha_[static_cast<std::size_t>(leave_row)];
      const double gain = sigma * alpha * enter_dir;
      if (gain <= 0.0) {
        // The FTRANed pivot disagrees in sign with the rho-dot estimate
        // (cancellation in one of the two): distrust this candidate.
        row_ratio_[static_cast<std::size_t>(enter)] = kInfinity;
        continue;
      }
      const double step = remaining / gain;  // > 0
      const double range = form_.upper[static_cast<std::size_t>(enter)] -
                           form_.lower[static_cast<std::size_t>(enter)];
      if (step <= range) {
        // --- Basis change: the violating variable leaves exactly at the
        // bound it violated; the entering variable absorbs the step.
#ifdef BIRP_LP_TRACE
        std::fprintf(stderr, "rp pivot r=%d e=%d step=%.12g\n", leave_row,
                     enter, step);
#endif
        if (!change_basis(leave_row, enter, enter_dir, step, sigma > 0.0)) {
          return Repair::GiveUp;  // numerically singular basis
        }
        break;
      }
      // Box step: the entering variable hits its opposite bound before the
      // violation is fully resolved. Flip it, consume it, keep cascading;
      // the violation shrank strictly by range * |alpha|.
#ifdef BIRP_LP_TRACE
      std::fprintf(stderr, "rp flip e=%d range=%.12g\n", enter, range);
#endif
      bound_flip(enter, enter_dir > 0.0 ? 1.0 : -1.0, range);
      row_ratio_[static_cast<std::size_t>(enter)] = kInfinity;
      remaining -= range * gain;
      if (++iterations_ > repair_limit) return Repair::GiveUp;
      if (remaining <= options_.tolerance) break;  // flips repaired the row
    }
  }
}

void RevisedSimplex::finish(Solution& result,
                            const std::vector<double>& costs) {
  result.status = SolveStatus::Optimal;

  // Constraint duals: every row's slack/artificial anchor appears only in
  // that row with stored coefficient +1 and zero phase-2 cost, so its
  // reduced cost is -y_i; undo the row flips to express the dual against
  // the model's orientation. (Equivalently: duals[i] = dual_sign_i * y_i.)
  compute_duals(costs);
  result.duals.resize(static_cast<std::size_t>(form_.rows));
  for (int i = 0; i < form_.rows; ++i) {
    const int anchor = form_.dual_col[static_cast<std::size_t>(i)];
    const double d = costs[static_cast<std::size_t>(anchor)] -
                     column_dot(anchor, y_);
    result.duals[static_cast<std::size_t>(i)] =
        form_.dual_sign[static_cast<std::size_t>(i)] * -d;
  }

  result.values.resize(static_cast<std::size_t>(form_.structural));
  for (int j = 0; j < form_.structural; ++j) {
    double v = form_.value[static_cast<std::size_t>(j)];
    // Clean tiny drift against the (possibly overridden) bounds.
    v = std::max(v, form_.lower[static_cast<std::size_t>(j)]);
    if (std::isfinite(form_.upper[static_cast<std::size_t>(j)])) {
      v = std::min(v, form_.upper[static_cast<std::size_t>(j)]);
    }
    result.values[static_cast<std::size_t>(j)] = v;
  }
  result.objective = model_.objective_value(result.values);
}

Solution RevisedSimplex::solve() {
  Solution result;

  // ---- Phase I: minimize the sum of artificial variables. ----
  std::vector<double> phase1(static_cast<std::size_t>(form_.cols), 0.0);
  for (int j = form_.artificial_begin; j < form_.cols; ++j) {
    phase1[static_cast<std::size_t>(j)] = 1.0;
  }

  bool need_phase1 = false;
  for (int i = 0; i < form_.rows; ++i) {
    if (form_.value[static_cast<std::size_t>(
            form_.basis[static_cast<std::size_t>(i)])] > options_.tolerance) {
      need_phase1 = true;
      break;
    }
  }
  if (need_phase1) {
    const SolveStatus status = iterate(phase1);
    // Phase I is bounded below by zero, so Unbounded cannot legitimately
    // occur; treat it as a numerical failure surfaced as IterationLimit.
    if (status == SolveStatus::IterationLimit ||
        status == SolveStatus::Unbounded) {
      result.status = SolveStatus::IterationLimit;
      result.simplex_iterations = iterations_;
      result.factor_pivots = lu_.factor_pivots();
      return result;
    }
    recompute_basic_values();
    double infeasibility = 0.0;
    for (int j = form_.artificial_begin; j < form_.cols; ++j) {
      if (form_.state[static_cast<std::size_t>(j)] == VarState::Basic ||
          form_.value[static_cast<std::size_t>(j)] != 0.0) {
        infeasibility += form_.value[static_cast<std::size_t>(j)];
      }
    }
    // Scale-relative verdict (with the tolerance itself as the absolute
    // floor): an absolute cutoff here turns Phase I rounding noise into
    // spurious Infeasible results once |b| is large, and matches the
    // historical 1e-6 cutoff for O(1)-scaled problems.
    if (infeasibility >
        10.0 * options_.tolerance * (1.0 + form_.rhs_scale)) {
      result.status = SolveStatus::Infeasible;
      result.simplex_iterations = iterations_;
      result.factor_pivots = lu_.factor_pivots();
      return result;
    }
  }

  // Retire artificials: they may remain basic at value zero (degenerate /
  // redundant rows) but are fixed so they can never re-enter or move.
  for (int j = form_.artificial_begin; j < form_.cols; ++j) {
    form_.lower[static_cast<std::size_t>(j)] = 0.0;
    form_.upper[static_cast<std::size_t>(j)] = 0.0;
    if (form_.state[static_cast<std::size_t>(j)] != VarState::Basic) {
      form_.value[static_cast<std::size_t>(j)] = 0.0;
      form_.state[static_cast<std::size_t>(j)] = VarState::AtLower;
    }
  }

  // ---- Phase II: the real objective. ----
  const std::vector<double> costs = phase2_costs();
  const SolveStatus status = iterate(costs);
  result.simplex_iterations = iterations_;
  result.factor_pivots = lu_.factor_pivots();
  if (status == SolveStatus::Unbounded) {
    result.status = SolveStatus::Unbounded;
    return result;
  }
  if (status == SolveStatus::IterationLimit) {
    result.status = SolveStatus::IterationLimit;
    return result;
  }

  recompute_basic_values();
  finish(result, costs);
  return result;
}

std::optional<Solution> RevisedSimplex::solve_warm() {
  const std::vector<double> costs = phase2_costs();

  // Primal feasibility of the refactorized basis under the current bounds.
  double primal_viol = 0.0;
  for (int i = 0; i < form_.rows; ++i) {
    const int bvar = form_.basis[static_cast<std::size_t>(i)];
    const double v = form_.value[static_cast<std::size_t>(bvar)];
    primal_viol =
        std::max(primal_viol, v - form_.upper[static_cast<std::size_t>(bvar)]);
    primal_viol =
        std::max(primal_viol, form_.lower[static_cast<std::size_t>(bvar)] - v);
  }

  if (primal_viol > options_.tolerance) {
    // Dual repair needs a dual-feasible start. A parent-optimal basis under
    // unchanged costs has one by construction; when the costs moved since
    // the seed basis was optimal (a new slot's demand re-weights the
    // objective), restore it the boxed-variable way: bound-flip every
    // nonbasic variable whose reduced cost has the wrong sign. Flips do not
    // touch the basis, so dual feasibility is exact afterwards; only a
    // variable with an infinite opposite bound cannot be flipped, and that
    // start goes back to the cold path.
    compute_duals(costs);
    bool flipped = false;
    for (int j = 0; j < form_.cols; ++j) {
      const auto sj = form_.state[static_cast<std::size_t>(j)];
      if (sj == VarState::Basic) continue;
      if (form_.lower[static_cast<std::size_t>(j)] ==
          form_.upper[static_cast<std::size_t>(j)]) {
        continue;
      }
      const double d = costs[static_cast<std::size_t>(j)] - column_dot(j, y_);
      if (sj == VarState::AtLower && d < -options_.tolerance) {
        if (!std::isfinite(form_.upper[static_cast<std::size_t>(j)])) {
#ifdef BIRP_LP_TRACE
          std::fprintf(stderr, "warmfail dual-infeasible d=%.3g\n", d);
#endif
          return std::nullopt;
        }
        form_.state[static_cast<std::size_t>(j)] = VarState::AtUpper;
        form_.value[static_cast<std::size_t>(j)] =
            form_.upper[static_cast<std::size_t>(j)];
        flipped = true;
      } else if (sj == VarState::AtUpper && d > options_.tolerance) {
        if (!std::isfinite(form_.lower[static_cast<std::size_t>(j)])) {
#ifdef BIRP_LP_TRACE
          std::fprintf(stderr, "warmfail dual-infeasible d=%.3g\n", d);
#endif
          return std::nullopt;
        }
        form_.state[static_cast<std::size_t>(j)] = VarState::AtLower;
        form_.value[static_cast<std::size_t>(j)] =
            form_.lower[static_cast<std::size_t>(j)];
        flipped = true;
      }
    }
    if (flipped) recompute_basic_values();
    switch (dual_repair(costs)) {
      case Repair::GiveUp:
#ifdef BIRP_LP_TRACE
        std::fprintf(stderr, "warmfail repair-giveup iters=%lld\n",
                     (long long)iterations_);
#endif
        return std::nullopt;  // stalled: distrust the basis, cold retry
      case Repair::Infeasible: {
        Solution result;
        result.status = SolveStatus::Infeasible;
        result.simplex_iterations = iterations_;
        result.factor_pivots = lu_.factor_pivots();
        result.warm_started = true;
        return result;
      }
      case Repair::Done:
        break;
    }
  }

  // Phase II from a primal-feasible basis (reduced costs are recomputed
  // every iteration, so any drift accumulated during repair is corrected).
  const SolveStatus status = iterate(costs);
  if (status == SolveStatus::IterationLimit) {
#ifdef BIRP_LP_TRACE
    std::fprintf(stderr, "warmfail phase2-limit iters=%lld\n",
                 (long long)iterations_);
#endif
    return std::nullopt;
  }

  Solution result;
  result.simplex_iterations = iterations_;
  result.factor_pivots = lu_.factor_pivots();
  result.warm_started = true;
  if (status == SolveStatus::Unbounded) {
    result.status = SolveStatus::Unbounded;
    return result;
  }
  recompute_basic_values();
  finish(result, costs);
  return result;
}

Basis RevisedSimplex::extract_basis() const {
  Basis basis;
  basis.structural.assign(static_cast<std::size_t>(form_.structural),
                          VarState::AtLower);
  for (int j = 0; j < form_.structural; ++j) {
    basis.structural[static_cast<std::size_t>(j)] =
        form_.state[static_cast<std::size_t>(j)];
  }
  basis.basic.assign(static_cast<std::size_t>(form_.rows), -1);
  for (int i = 0; i < form_.rows; ++i) {
    const int col = form_.basis[static_cast<std::size_t>(i)];
    if (col < form_.structural) {
      basis.basic[static_cast<std::size_t>(i)] = col;
    } else if (col < form_.artificial_begin) {
      basis.basic[static_cast<std::size_t>(i)] =
          form_.structural + form_.slack_row[static_cast<std::size_t>(col)];
    }
    // Artificial columns stay encoded as -1.
  }
  return basis;
}

}  // namespace

Solution solve_lp_revised(const Model& model, std::span<const double> lower,
                          std::span<const double> upper,
                          const SimplexOptions& options,
                          const Basis* warm_start, bool emit_basis) {
  return solve_lp_with<RevisedSimplex>(model, lower, upper, options,
                                       warm_start, emit_basis);
}

Solution solve_lp(const Model& model, const SimplexOptions& options) {
  return solve_lp(model, {}, {}, options);
}

Solution solve_lp(const Model& model, std::span<const double> lower,
                  std::span<const double> upper, const SimplexOptions& options,
                  const Basis* warm_start, bool emit_basis) {
  util::check(lower.empty() ||
                  lower.size() == static_cast<std::size_t>(model.num_variables()),
              "solve_lp: lower override size mismatch");
  util::check(upper.empty() ||
                  upper.size() == static_cast<std::size_t>(model.num_variables()),
              "solve_lp: upper override size mismatch");
  if (options.algorithm == SimplexAlgorithm::DenseTableau) {
    return solve_lp_dense(model, lower, upper, options, warm_start, emit_basis);
  }
  return solve_lp_revised(model, lower, upper, options, warm_start, emit_basis);
}

}  // namespace birp::solver
