#include "birp/solver/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "birp/util/check.hpp"

namespace birp::solver {
namespace {

/// Dense working storage for one simplex solve. Columns are ordered
/// [structural | slack/surplus | artificial]; the tableau holds B^{-1}A and
/// is updated in place on every pivot.
///
/// Two construction modes share the pivoting core: the cold constructor
/// builds a Phase I start (slacks basic where they absorb the residual,
/// artificials elsewhere), while the warm constructor rebuilds a caller
/// basis against the current bounds by Gauss-Jordan refactorization and
/// repairs any bound violations with a dual simplex, skipping Phase I.
class Tableau {
 public:
  Tableau(const Model& model, std::span<const double> lower_override,
          std::span<const double> upper_override, SimplexOptions options);
  /// Warm construction from a prior basis; check warm_ok() before solving.
  Tableau(const Model& model, std::span<const double> lower_override,
          std::span<const double> upper_override, SimplexOptions options,
          const Basis& warm);

  Solution solve();
  /// Warm solve: dual repair + Phase II. nullopt asks the caller to fall
  /// back to the cold path (stalled repair or dual-infeasible start).
  std::optional<Solution> solve_warm();

  [[nodiscard]] bool warm_ok() const noexcept { return warm_ok_; }
  [[nodiscard]] Basis extract_basis() const;
  [[nodiscard]] std::int64_t iterations() const noexcept { return iterations_; }
  [[nodiscard]] std::int64_t factor_pivots() const noexcept {
    return factor_pivots_;
  }

 private:
  enum class Repair { Done, Infeasible, GiveUp };

  [[nodiscard]] double& at(int row, int col) noexcept {
    return tableau_[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
                    static_cast<std::size_t>(col)];
  }
  [[nodiscard]] double at(int row, int col) const noexcept {
    return tableau_[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
                    static_cast<std::size_t>(col)];
  }

  void init_structural_bounds(std::span<const double> lower_override,
                              std::span<const double> upper_override);
  void compute_reduced_costs(const std::vector<double>& costs);
  void recompute_basic_values();
  [[nodiscard]] std::vector<double> phase2_costs() const;
  /// One phase of the primal simplex. Returns Optimal / Unbounded /
  /// IterationLimit relative to the given costs.
  SolveStatus iterate(const std::vector<double>& costs);
  /// Bounded-variable dual simplex: drives basic variables back inside
  /// their bounds while keeping the reduced costs dual feasible. Requires
  /// compute_reduced_costs to have run for the Phase II costs.
  Repair dual_repair();
  void pivot(int leave_row, int enter_col);
  /// Gauss-Jordan refactorization of `basic_cols` (one column per row, any
  /// order) with partial pivoting. False when the basis is singular.
  bool factorize(const std::vector<int>& basic_cols);
  /// Shared Optimal tail: duals, cleaned values, objective.
  void finish(Solution& result);

  const Model& model_;
  SimplexOptions options_;

  int rows_ = 0;            // number of constraints m
  int cols_ = 0;            // total columns n (structural + slack + artificial)
  int structural_ = 0;      // number of model variables
  int artificial_begin_ = 0;

  std::vector<double> tableau_;        // m x n, row-major: B^{-1}A
  std::vector<double> rhs_;            // B^{-1}b
  std::vector<double> lower_, upper_;  // per column
  std::vector<double> reduced_;        // reduced costs per column
  std::vector<VarState> state_;
  std::vector<double> value_;          // current value per column
  std::vector<int> basis_;             // basic column per row
  std::vector<int> dual_col_;          // slack/artificial column anchoring row i's dual
  std::vector<double> dual_sign_;      // cumulative row flips vs the model's orientation
  std::vector<int> slack_row_;         // slack/artificial column -> its row (-1 else)

  std::int64_t iterations_ = 0;
  std::int64_t iteration_limit_ = 0;
  std::int64_t factor_pivots_ = 0;
  bool warm_ok_ = false;
};

void Tableau::init_structural_bounds(std::span<const double> lower_override,
                                     std::span<const double> upper_override) {
  for (int j = 0; j < structural_; ++j) {
    const auto& info = model_.variable(j);
    const double lo = lower_override.empty()
                          ? info.lower
                          : lower_override[static_cast<std::size_t>(j)];
    const double hi = upper_override.empty()
                          ? info.upper
                          : upper_override[static_cast<std::size_t>(j)];
    util::check(std::isfinite(lo), "simplex requires finite lower bounds");
    lower_[static_cast<std::size_t>(j)] = lo;
    upper_[static_cast<std::size_t>(j)] = hi;
  }
}

Tableau::Tableau(const Model& model, std::span<const double> lower_override,
                 std::span<const double> upper_override, SimplexOptions options)
    : model_(model), options_(options) {
  const int m = model.num_constraints();
  const int n_struct = model.num_variables();
  rows_ = m;
  structural_ = n_struct;

  // Count slack columns (one per inequality).
  int slack_count = 0;
  for (const auto& constraint : model.constraints()) {
    if (constraint.relation != Relation::Equal) ++slack_count;
  }
  artificial_begin_ = n_struct + slack_count;

  // First pass: structural bounds and residuals decide which rows need an
  // artificial. Inequality rows whose slack can absorb the residual start
  // with the slack basic (no artificial) — this typically removes the vast
  // majority of Phase I work.
  std::vector<double> start_value(static_cast<std::size_t>(n_struct));
  for (int j = 0; j < n_struct; ++j) {
    const auto& info = model.variable(j);
    const double lo = lower_override.empty()
                          ? info.lower
                          : lower_override[static_cast<std::size_t>(j)];
    util::check(std::isfinite(lo), "simplex requires finite lower bounds");
    start_value[static_cast<std::size_t>(j)] = lo;
  }
  int artificial_count = 0;
  std::vector<bool> needs_artificial(static_cast<std::size_t>(m), false);
  {
    for (int i = 0; i < m; ++i) {
      const auto& constraint = model.constraint(i);
      double residual = constraint.rhs;
      for (const auto& term : constraint.terms) {
        residual -= term.coeff * start_value[static_cast<std::size_t>(term.var)];
      }
      bool slack_ok = false;
      switch (constraint.relation) {
        case Relation::LessEqual:
          slack_ok = residual >= 0.0;  // slack in [0, inf)
          break;
        case Relation::GreaterEqual:
          slack_ok = residual <= 0.0;  // surplus absorbs -residual
          break;
        case Relation::Equal:
          slack_ok = false;  // no slack column: always needs an artificial
          break;
      }
      if (!slack_ok) {
        needs_artificial[static_cast<std::size_t>(i)] = true;
        ++artificial_count;
      }
    }
  }
  cols_ = artificial_begin_ + artificial_count;

  tableau_.assign(static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_), 0.0);
  rhs_.assign(static_cast<std::size_t>(rows_), 0.0);
  lower_.assign(static_cast<std::size_t>(cols_), 0.0);
  upper_.assign(static_cast<std::size_t>(cols_), kInfinity);
  state_.assign(static_cast<std::size_t>(cols_), VarState::AtLower);
  value_.assign(static_cast<std::size_t>(cols_), 0.0);
  basis_.assign(static_cast<std::size_t>(rows_), -1);
  slack_row_.assign(static_cast<std::size_t>(cols_), -1);

  // Structural bounds (with branch-and-bound overrides), nonbasic at lower.
  for (int j = 0; j < n_struct; ++j) {
    const auto& info = model.variable(j);
    const double hi = upper_override.empty()
                          ? info.upper
                          : upper_override[static_cast<std::size_t>(j)];
    lower_[static_cast<std::size_t>(j)] = start_value[static_cast<std::size_t>(j)];
    upper_[static_cast<std::size_t>(j)] = hi;
    value_[static_cast<std::size_t>(j)] = start_value[static_cast<std::size_t>(j)];
  }

  // Fill coefficients, slacks, artificials, and the starting basis. Rows are
  // flipped where needed so every initial basic variable has coefficient +1.
  dual_col_.assign(static_cast<std::size_t>(m), -1);
  dual_sign_.assign(static_cast<std::size_t>(m), 1.0);
  int slack = n_struct;
  int artificial = artificial_begin_;
  for (int i = 0; i < m; ++i) {
    const auto& constraint = model.constraint(i);
    for (const auto& term : constraint.terms) at(i, term.var) = term.coeff;
    rhs_[static_cast<std::size_t>(i)] = constraint.rhs;

    double residual = constraint.rhs;
    for (const auto& term : constraint.terms) {
      residual -= term.coeff * start_value[static_cast<std::size_t>(term.var)];
    }

    int slack_col = -1;
    switch (constraint.relation) {
      case Relation::LessEqual:
        slack_col = slack;
        at(i, slack_col) = 1.0;
        ++slack;
        break;
      case Relation::GreaterEqual:
        // Written as -Ax <= -b so the surplus has coefficient +1: flip row.
        for (int j = 0; j < n_struct; ++j) at(i, j) = -at(i, j);
        rhs_[static_cast<std::size_t>(i)] = -rhs_[static_cast<std::size_t>(i)];
        residual = -residual;
        dual_sign_[static_cast<std::size_t>(i)] = -1.0;
        slack_col = slack;
        at(i, slack_col) = 1.0;
        ++slack;
        break;
      case Relation::Equal:
        break;
    }
    if (slack_col >= 0) slack_row_[static_cast<std::size_t>(slack_col)] = i;

    if (!needs_artificial[static_cast<std::size_t>(i)]) {
      // Slack absorbs the residual (>= 0 after any flip): basic immediately.
      basis_[static_cast<std::size_t>(i)] = slack_col;
      state_[static_cast<std::size_t>(slack_col)] = VarState::Basic;
      value_[static_cast<std::size_t>(slack_col)] = residual;
      dual_col_[static_cast<std::size_t>(i)] = slack_col;
      continue;
    }
    if (residual < 0.0) {
      for (int j = 0; j < cols_; ++j) at(i, j) = -at(i, j);
      rhs_[static_cast<std::size_t>(i)] = -rhs_[static_cast<std::size_t>(i)];
      residual = -residual;
      dual_sign_[static_cast<std::size_t>(i)] =
          -dual_sign_[static_cast<std::size_t>(i)];
    }
    at(i, artificial) = 1.0;
    basis_[static_cast<std::size_t>(i)] = artificial;
    state_[static_cast<std::size_t>(artificial)] = VarState::Basic;
    value_[static_cast<std::size_t>(artificial)] = residual;
    // The artificial anchors the dual: it appears only in this row with
    // stored coefficient +1 and phase-2 cost 0, so y_i = -d_artificial.
    dual_col_[static_cast<std::size_t>(i)] = artificial;
    slack_row_[static_cast<std::size_t>(artificial)] = i;
    ++artificial;
  }

  iteration_limit_ = options_.max_iterations > 0
                         ? options_.max_iterations
                         : 200 + 30ll * (rows_ + cols_);
  reduced_.assign(static_cast<std::size_t>(cols_), 0.0);
}

Tableau::Tableau(const Model& model, std::span<const double> lower_override,
                 std::span<const double> upper_override, SimplexOptions options,
                 const Basis& warm)
    : model_(model), options_(options) {
  const int m = model.num_constraints();
  const int n_struct = model.num_variables();
  rows_ = m;
  structural_ = n_struct;
  if (!warm.matches(n_struct, m)) return;  // warm_ok_ stays false

  // Layout: slack per inequality row (same order as the cold path), then one
  // artificial per equality row (the dual anchor) or per row whose recorded
  // basic column was an artificial. All artificials are fixed at [0, 0]; the
  // warm path never runs Phase I.
  std::vector<int> slack_col(static_cast<std::size_t>(m), -1);
  std::vector<int> art_col(static_cast<std::size_t>(m), -1);
  int slack_count = 0;
  for (int i = 0; i < m; ++i) {
    if (model.constraint(i).relation != Relation::Equal) {
      slack_col[static_cast<std::size_t>(i)] = n_struct + slack_count;
      ++slack_count;
    }
  }
  artificial_begin_ = n_struct + slack_count;
  int artificial_count = 0;
  for (int i = 0; i < m; ++i) {
    const bool is_equal = model.constraint(i).relation == Relation::Equal;
    if (is_equal || warm.basic[static_cast<std::size_t>(i)] < 0) {
      art_col[static_cast<std::size_t>(i)] = artificial_begin_ + artificial_count;
      ++artificial_count;
    }
  }
  cols_ = artificial_begin_ + artificial_count;

  tableau_.assign(static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_), 0.0);
  rhs_.assign(static_cast<std::size_t>(rows_), 0.0);
  lower_.assign(static_cast<std::size_t>(cols_), 0.0);
  upper_.assign(static_cast<std::size_t>(cols_), kInfinity);
  state_.assign(static_cast<std::size_t>(cols_), VarState::AtLower);
  value_.assign(static_cast<std::size_t>(cols_), 0.0);
  basis_.assign(static_cast<std::size_t>(rows_), -1);
  slack_row_.assign(static_cast<std::size_t>(cols_), -1);
  dual_col_.assign(static_cast<std::size_t>(m), -1);
  dual_sign_.assign(static_cast<std::size_t>(m), 1.0);
  reduced_.assign(static_cast<std::size_t>(cols_), 0.0);

  init_structural_bounds(lower_override, upper_override);

  // Fill raw coefficients. Only the deterministic >= flip is applied (the
  // cold path's residual-dependent flips exist to make Phase I starts
  // positive, which the warm path does not need).
  for (int i = 0; i < m; ++i) {
    const auto& constraint = model.constraint(i);
    for (const auto& term : constraint.terms) at(i, term.var) = term.coeff;
    rhs_[static_cast<std::size_t>(i)] = constraint.rhs;
    if (constraint.relation == Relation::GreaterEqual) {
      for (int j = 0; j < n_struct; ++j) at(i, j) = -at(i, j);
      rhs_[static_cast<std::size_t>(i)] = -rhs_[static_cast<std::size_t>(i)];
      dual_sign_[static_cast<std::size_t>(i)] = -1.0;
    }
    const int sc = slack_col[static_cast<std::size_t>(i)];
    if (sc >= 0) {
      at(i, sc) = 1.0;
      slack_row_[static_cast<std::size_t>(sc)] = i;
    }
    const int ac = art_col[static_cast<std::size_t>(i)];
    if (ac >= 0) {
      at(i, ac) = 1.0;
      upper_[static_cast<std::size_t>(ac)] = 0.0;  // fixed at zero
      slack_row_[static_cast<std::size_t>(ac)] = i;
    }
    // Dual anchor: slack where one exists, artificial for equality rows.
    dual_col_[static_cast<std::size_t>(i)] = sc >= 0 ? sc : ac;
  }

  // Nonbasic starting point from the recorded states (the basic list below
  // overrides). A variable recorded AtUpper whose current upper bound is
  // infinite is parked at its lower bound instead.
  for (int j = 0; j < n_struct; ++j) {
    const bool at_upper =
        warm.structural[static_cast<std::size_t>(j)] == VarState::AtUpper &&
        std::isfinite(upper_[static_cast<std::size_t>(j)]);
    state_[static_cast<std::size_t>(j)] =
        at_upper ? VarState::AtUpper : VarState::AtLower;
    value_[static_cast<std::size_t>(j)] =
        at_upper ? upper_[static_cast<std::size_t>(j)]
                 : lower_[static_cast<std::size_t>(j)];
  }

  // Decode the basic column list; reject malformed bases (out-of-range
  // entries, slack of an equality row, duplicates).
  std::vector<int> basic_cols(static_cast<std::size_t>(m), -1);
  for (int i = 0; i < m; ++i) {
    const int code = warm.basic[static_cast<std::size_t>(i)];
    int col = -1;
    if (code < 0) {
      col = art_col[static_cast<std::size_t>(i)];
    } else if (code < n_struct) {
      col = code;
    } else if (code - n_struct < m) {
      col = slack_col[static_cast<std::size_t>(code - n_struct)];
    }
    if (col < 0 || state_[static_cast<std::size_t>(col)] == VarState::Basic) {
      return;  // invalid or duplicate: cold fallback
    }
    state_[static_cast<std::size_t>(col)] = VarState::Basic;
    basic_cols[static_cast<std::size_t>(i)] = col;
  }

  iteration_limit_ = options_.max_iterations > 0
                         ? options_.max_iterations
                         : 200 + 30ll * (rows_ + cols_);

  if (!factorize(basic_cols)) return;  // singular: cold fallback
  recompute_basic_values();
  warm_ok_ = true;
}

bool Tableau::factorize(const std::vector<int>& basic_cols) {
  std::vector<char> row_used(static_cast<std::size_t>(rows_), 0);
  for (int idx = 0; idx < rows_; ++idx) {
    const int col = basic_cols[static_cast<std::size_t>(idx)];
    // Partial pivoting over the rows not yet claimed by a basic column.
    int best_row = -1;
    double best_abs = options_.pivot_tolerance;
    for (int i = 0; i < rows_; ++i) {
      if (row_used[static_cast<std::size_t>(i)]) continue;
      const double a = std::abs(at(i, col));
      if (a > best_abs) {
        best_abs = a;
        best_row = i;
      }
    }
    if (best_row < 0) return false;  // numerically singular basis
    pivot(best_row, col);            // reduced_ is all zero here: no-op there
    ++factor_pivots_;
    basis_[static_cast<std::size_t>(best_row)] = col;
    row_used[static_cast<std::size_t>(best_row)] = 1;
  }
  return true;
}

void Tableau::compute_reduced_costs(const std::vector<double>& costs) {
  // d_j = c_j - sum_i c_{basis(i)} * T(i, j)
  std::vector<double> basic_costs(static_cast<std::size_t>(rows_));
  bool any_nonzero = false;
  for (int i = 0; i < rows_; ++i) {
    basic_costs[static_cast<std::size_t>(i)] =
        costs[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
    any_nonzero = any_nonzero || basic_costs[static_cast<std::size_t>(i)] != 0.0;
  }
  std::copy(costs.begin(), costs.end(), reduced_.begin());
  if (!any_nonzero) return;
  for (int i = 0; i < rows_; ++i) {
    const double cb = basic_costs[static_cast<std::size_t>(i)];
    if (cb == 0.0) continue;
    const double* row = &tableau_[static_cast<std::size_t>(i) *
                                  static_cast<std::size_t>(cols_)];
    for (int j = 0; j < cols_; ++j) reduced_[static_cast<std::size_t>(j)] -= cb * row[j];
  }
  for (int i = 0; i < rows_; ++i) {
    reduced_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] = 0.0;
  }
}

void Tableau::recompute_basic_values() {
  // xB = B^{-1} b - sum over nonbasic j with nonzero value of T(:, j) * x_j.
  std::vector<double> xb(rhs_.begin(), rhs_.end());
  for (int j = 0; j < cols_; ++j) {
    if (state_[static_cast<std::size_t>(j)] == VarState::Basic) continue;
    const double v = value_[static_cast<std::size_t>(j)];
    if (v == 0.0) continue;
    for (int i = 0; i < rows_; ++i) xb[static_cast<std::size_t>(i)] -= at(i, j) * v;
  }
  for (int i = 0; i < rows_; ++i) {
    value_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] =
        xb[static_cast<std::size_t>(i)];
  }
}

std::vector<double> Tableau::phase2_costs() const {
  std::vector<double> costs(static_cast<std::size_t>(cols_), 0.0);
  for (int j = 0; j < structural_; ++j) {
    costs[static_cast<std::size_t>(j)] = model_.variable(j).objective;
  }
  return costs;
}

void Tableau::pivot(int leave_row, int enter_col) {
  const double pivot_value = at(leave_row, enter_col);
  double* prow = &tableau_[static_cast<std::size_t>(leave_row) *
                           static_cast<std::size_t>(cols_)];
  const double inv = 1.0 / pivot_value;
  for (int j = 0; j < cols_; ++j) prow[j] *= inv;
  rhs_[static_cast<std::size_t>(leave_row)] *= inv;

  for (int i = 0; i < rows_; ++i) {
    if (i == leave_row) continue;
    const double factor = at(i, enter_col);
    if (factor == 0.0) continue;
    double* row = &tableau_[static_cast<std::size_t>(i) *
                            static_cast<std::size_t>(cols_)];
    for (int j = 0; j < cols_; ++j) row[j] -= factor * prow[j];
    rhs_[static_cast<std::size_t>(i)] -= factor * rhs_[static_cast<std::size_t>(leave_row)];
  }

  const double dfactor = reduced_[static_cast<std::size_t>(enter_col)];
  if (dfactor != 0.0) {
    for (int j = 0; j < cols_; ++j) reduced_[static_cast<std::size_t>(j)] -= dfactor * prow[j];
  }
  reduced_[static_cast<std::size_t>(enter_col)] = 0.0;
}

SolveStatus Tableau::iterate(const std::vector<double>& costs) {
  compute_reduced_costs(costs);
  int stalled = 0;

  while (true) {
    if (++iterations_ > iteration_limit_) return SolveStatus::IterationLimit;
    const bool bland = stalled >= options_.stall_threshold;

    // --- Pricing: pick an entering column with a profitable direction. ---
    int enter = -1;
    double enter_dir = 0.0;
    double best_score = options_.tolerance;
    for (int j = 0; j < cols_; ++j) {
      const auto sj = state_[static_cast<std::size_t>(j)];
      if (sj == VarState::Basic) continue;
      const double lo = lower_[static_cast<std::size_t>(j)];
      const double hi = upper_[static_cast<std::size_t>(j)];
      if (lo == hi) continue;  // fixed (includes retired artificials)
      const double d = reduced_[static_cast<std::size_t>(j)];
      double dir = 0.0;
      if (sj == VarState::AtLower && d < -options_.tolerance) dir = 1.0;
      if (sj == VarState::AtUpper && d > options_.tolerance) dir = -1.0;
      if (dir == 0.0) continue;
      if (bland) {
        enter = j;
        enter_dir = dir;
        break;
      }
      if (std::abs(d) > best_score) {
        best_score = std::abs(d);
        enter = j;
        enter_dir = dir;
      }
    }
    if (enter == -1) return SolveStatus::Optimal;

    // --- Ratio test: how far can the entering variable move? ---
    double t_best = upper_[static_cast<std::size_t>(enter)] -
                    lower_[static_cast<std::size_t>(enter)];
    int leave_row = -1;
    bool leave_to_upper = false;
    for (int i = 0; i < rows_; ++i) {
      const double alpha = enter_dir * at(i, enter);
      if (std::abs(alpha) <= options_.pivot_tolerance) continue;
      const int bvar = basis_[static_cast<std::size_t>(i)];
      const double xv = value_[static_cast<std::size_t>(bvar)];
      double t = kInfinity;
      bool to_upper = false;
      if (alpha > 0.0) {  // basic variable decreases toward its lower bound
        t = (xv - lower_[static_cast<std::size_t>(bvar)]) / alpha;
      } else {  // basic variable increases toward its upper bound
        const double hi = upper_[static_cast<std::size_t>(bvar)];
        if (!std::isfinite(hi)) continue;
        t = (hi - xv) / (-alpha);
        to_upper = true;
      }
      t = std::max(t, 0.0);
      // Strictly smaller step wins; under Bland's rule, ties break toward the
      // smallest basic variable index to guarantee anti-cycling.
      if (t < t_best - 1e-12 ||
          (bland && leave_row >= 0 && t <= t_best + 1e-12 &&
           bvar < basis_[static_cast<std::size_t>(leave_row)])) {
        t_best = t;
        leave_row = i;
        leave_to_upper = to_upper;
      }
    }

    if (!std::isfinite(t_best)) return SolveStatus::Unbounded;
    stalled = t_best <= options_.tolerance ? stalled + 1 : 0;

    if (leave_row == -1) {
      // Bound flip: the entering variable runs to its opposite bound.
      const double t = t_best;
      for (int i = 0; i < rows_; ++i) {
        const double a = at(i, enter);
        if (a == 0.0) continue;
        const int bvar = basis_[static_cast<std::size_t>(i)];
        value_[static_cast<std::size_t>(bvar)] -= enter_dir * t * a;
      }
      auto& sj = state_[static_cast<std::size_t>(enter)];
      if (enter_dir > 0.0) {
        sj = VarState::AtUpper;
        value_[static_cast<std::size_t>(enter)] = upper_[static_cast<std::size_t>(enter)];
      } else {
        sj = VarState::AtLower;
        value_[static_cast<std::size_t>(enter)] = lower_[static_cast<std::size_t>(enter)];
      }
      continue;
    }

    // --- Basis change. ---
    const double t = t_best;
    for (int i = 0; i < rows_; ++i) {
      if (i == leave_row) continue;
      const double a = at(i, enter);
      if (a == 0.0) continue;
      const int bvar = basis_[static_cast<std::size_t>(i)];
      value_[static_cast<std::size_t>(bvar)] -= enter_dir * t * a;
    }
    const int leaving = basis_[static_cast<std::size_t>(leave_row)];
    state_[static_cast<std::size_t>(leaving)] =
        leave_to_upper ? VarState::AtUpper : VarState::AtLower;
    value_[static_cast<std::size_t>(leaving)] =
        leave_to_upper ? upper_[static_cast<std::size_t>(leaving)]
                       : lower_[static_cast<std::size_t>(leaving)];

    const double enter_value =
        value_[static_cast<std::size_t>(enter)] + enter_dir * t;
    pivot(leave_row, enter);
    basis_[static_cast<std::size_t>(leave_row)] = enter;
    state_[static_cast<std::size_t>(enter)] = VarState::Basic;
    value_[static_cast<std::size_t>(enter)] = enter_value;
  }
}

Tableau::Repair Tableau::dual_repair() {
  // Tight budget, separate from the global pivot limit: a genuinely warm
  // basis repairs in far fewer pivots than a cold solve takes, so once the
  // repair rivals a cold solve's cost (or cycles on degeneracy) it is
  // cheaper to give up early and fall back than to grind to the full limit.
  const std::int64_t repair_limit =
      std::min(iteration_limit_, iterations_ + rows_ + 100);
  while (true) {
    if (++iterations_ > repair_limit) return Repair::GiveUp;

    // --- Leaving row: the basic variable with the largest bound violation.
    // sigma = +1 when it must decrease (above upper), -1 when it must
    // increase (below lower).
    int leave_row = -1;
    double best_viol = options_.tolerance;
    double sigma = 0.0;
    for (int i = 0; i < rows_; ++i) {
      const int bvar = basis_[static_cast<std::size_t>(i)];
      const double v = value_[static_cast<std::size_t>(bvar)];
      const double above = v - upper_[static_cast<std::size_t>(bvar)];
      const double below = lower_[static_cast<std::size_t>(bvar)] - v;
      if (above > best_viol) {
        best_viol = above;
        leave_row = i;
        sigma = 1.0;
      }
      if (below > best_viol) {
        best_viol = below;
        leave_row = i;
        sigma = -1.0;
      }
    }
    if (leave_row < 0) return Repair::Done;  // primal feasible

    // --- Entering column: dual ratio test. A candidate must move the
    // violating basic variable toward its bound; among candidates the
    // smallest |d_j / alpha| keeps the reduced costs dual feasible. Ties
    // break to the smallest column index (deterministic, anti-cycling).
    int enter = -1;
    double enter_dir = 0.0;
    double best_ratio = kInfinity;
    for (int j = 0; j < cols_; ++j) {
      const auto sj = state_[static_cast<std::size_t>(j)];
      if (sj == VarState::Basic) continue;
      if (lower_[static_cast<std::size_t>(j)] ==
          upper_[static_cast<std::size_t>(j)]) {
        continue;  // fixed (artificials)
      }
      const double alpha = at(leave_row, j);
      if (std::abs(alpha) <= options_.pivot_tolerance) continue;
      double dir = 0.0;
      if (sj == VarState::AtLower) {
        if (sigma * alpha <= 0.0) continue;  // moving up must shrink the violation
        dir = 1.0;
      } else {
        if (sigma * alpha >= 0.0) continue;  // moving down must shrink it
        dir = -1.0;
      }
      const double ratio = std::max(
          0.0, reduced_[static_cast<std::size_t>(j)] / (sigma * alpha));
      if (ratio < best_ratio - 1e-12) {
        best_ratio = ratio;
        enter = j;
        enter_dir = dir;
      }
    }
    if (enter < 0) {
      // No column can reduce the violation: this row proves the bounds
      // cannot be met (the dual is unbounded), i.e. the LP is infeasible.
      return Repair::Infeasible;
    }

    const double alpha = at(leave_row, enter);
    const double step = sigma * best_viol / (alpha * enter_dir);  // > 0

    const double range = upper_[static_cast<std::size_t>(enter)] -
                         lower_[static_cast<std::size_t>(enter)];
    if (step > range) {
      // Box step: the entering variable hits its opposite bound before the
      // violation is fully resolved. Flip it without a basis change; the
      // violation shrank strictly, so the loop makes progress.
      for (int i = 0; i < rows_; ++i) {
        const double a = at(i, enter);
        if (a == 0.0) continue;
        const int bvar = basis_[static_cast<std::size_t>(i)];
        value_[static_cast<std::size_t>(bvar)] -= enter_dir * range * a;
      }
      auto& sj = state_[static_cast<std::size_t>(enter)];
      if (enter_dir > 0.0) {
        sj = VarState::AtUpper;
        value_[static_cast<std::size_t>(enter)] =
            upper_[static_cast<std::size_t>(enter)];
      } else {
        sj = VarState::AtLower;
        value_[static_cast<std::size_t>(enter)] =
            lower_[static_cast<std::size_t>(enter)];
      }
      continue;
    }

    // --- Basis change: the violating variable leaves exactly at the bound
    // it violated; the entering variable absorbs the step.
    for (int i = 0; i < rows_; ++i) {
      if (i == leave_row) continue;
      const double a = at(i, enter);
      if (a == 0.0) continue;
      const int bvar = basis_[static_cast<std::size_t>(i)];
      value_[static_cast<std::size_t>(bvar)] -= enter_dir * step * a;
    }
    const int leaving = basis_[static_cast<std::size_t>(leave_row)];
    state_[static_cast<std::size_t>(leaving)] =
        sigma > 0.0 ? VarState::AtUpper : VarState::AtLower;
    value_[static_cast<std::size_t>(leaving)] =
        sigma > 0.0 ? upper_[static_cast<std::size_t>(leaving)]
                    : lower_[static_cast<std::size_t>(leaving)];

    const double enter_value =
        value_[static_cast<std::size_t>(enter)] + enter_dir * step;
    pivot(leave_row, enter);
    basis_[static_cast<std::size_t>(leave_row)] = enter;
    state_[static_cast<std::size_t>(enter)] = VarState::Basic;
    value_[static_cast<std::size_t>(enter)] = enter_value;
  }
}

void Tableau::finish(Solution& result) {
  result.status = SolveStatus::Optimal;

  // Constraint duals: every row's slack/artificial column appears only in
  // that row with original stored coefficient +1 and zero phase-2 cost, so
  // its reduced cost is d = -y_i (stored orientation); undo the row flips
  // to express the dual against the model's orientation.
  result.duals.resize(static_cast<std::size_t>(rows_));
  for (int i = 0; i < rows_; ++i) {
    const int anchor = dual_col_[static_cast<std::size_t>(i)];
    result.duals[static_cast<std::size_t>(i)] =
        dual_sign_[static_cast<std::size_t>(i)] *
        -reduced_[static_cast<std::size_t>(anchor)];
  }

  result.values.resize(static_cast<std::size_t>(structural_));
  for (int j = 0; j < structural_; ++j) {
    double v = value_[static_cast<std::size_t>(j)];
    // Clean tiny drift against the (possibly overridden) bounds.
    v = std::max(v, lower_[static_cast<std::size_t>(j)]);
    if (std::isfinite(upper_[static_cast<std::size_t>(j)])) {
      v = std::min(v, upper_[static_cast<std::size_t>(j)]);
    }
    result.values[static_cast<std::size_t>(j)] = v;
  }
  result.objective = model_.objective_value(result.values);
}

Solution Tableau::solve() {
  Solution result;

  // ---- Phase I: minimize the sum of artificial variables. ----
  std::vector<double> phase1(static_cast<std::size_t>(cols_), 0.0);
  for (int j = artificial_begin_; j < cols_; ++j) phase1[static_cast<std::size_t>(j)] = 1.0;

  bool need_phase1 = false;
  for (int i = 0; i < rows_; ++i) {
    if (value_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] >
        options_.tolerance) {
      need_phase1 = true;
      break;
    }
  }
  if (need_phase1) {
    const SolveStatus status = iterate(phase1);
    if (status == SolveStatus::IterationLimit) {
      result.status = SolveStatus::IterationLimit;
      result.simplex_iterations = iterations_;
      return result;
    }
    // Phase I is bounded below by zero, so Unbounded cannot legitimately
    // occur; treat it as a numerical failure surfaced as IterationLimit.
    if (status == SolveStatus::Unbounded) {
      result.status = SolveStatus::IterationLimit;
      result.simplex_iterations = iterations_;
      return result;
    }
    recompute_basic_values();
    double infeasibility = 0.0;
    for (int j = artificial_begin_; j < cols_; ++j) {
      if (state_[static_cast<std::size_t>(j)] == VarState::Basic ||
          value_[static_cast<std::size_t>(j)] != 0.0) {
        infeasibility += value_[static_cast<std::size_t>(j)];
      }
    }
    if (infeasibility > 1e-6) {
      result.status = SolveStatus::Infeasible;
      result.simplex_iterations = iterations_;
      return result;
    }
  }

  // Retire artificials: they may remain basic at value zero (degenerate /
  // redundant rows) but are fixed so they can never re-enter or move.
  for (int j = artificial_begin_; j < cols_; ++j) {
    lower_[static_cast<std::size_t>(j)] = 0.0;
    upper_[static_cast<std::size_t>(j)] = 0.0;
    if (state_[static_cast<std::size_t>(j)] != VarState::Basic) {
      value_[static_cast<std::size_t>(j)] = 0.0;
      state_[static_cast<std::size_t>(j)] = VarState::AtLower;
    }
  }

  // ---- Phase II: the real objective. ----
  const SolveStatus status = iterate(phase2_costs());
  result.simplex_iterations = iterations_;
  if (status == SolveStatus::Unbounded) {
    result.status = SolveStatus::Unbounded;
    return result;
  }
  if (status == SolveStatus::IterationLimit) {
    result.status = SolveStatus::IterationLimit;
    return result;
  }

  recompute_basic_values();
  finish(result);
  return result;
}

std::optional<Solution> Tableau::solve_warm() {
  const std::vector<double> costs = phase2_costs();
  compute_reduced_costs(costs);

  // Primal feasibility of the refactorized basis under the current bounds.
  double primal_viol = 0.0;
  for (int i = 0; i < rows_; ++i) {
    const int bvar = basis_[static_cast<std::size_t>(i)];
    const double v = value_[static_cast<std::size_t>(bvar)];
    primal_viol = std::max(primal_viol, v - upper_[static_cast<std::size_t>(bvar)]);
    primal_viol = std::max(primal_viol, lower_[static_cast<std::size_t>(bvar)] - v);
  }

  if (primal_viol > options_.tolerance) {
    // Dual repair needs a dual-feasible start; a parent-optimal basis has
    // one by construction, anything else goes back to the cold path.
    for (int j = 0; j < cols_; ++j) {
      const auto sj = state_[static_cast<std::size_t>(j)];
      if (sj == VarState::Basic) continue;
      if (lower_[static_cast<std::size_t>(j)] ==
          upper_[static_cast<std::size_t>(j)]) {
        continue;
      }
      const double d = reduced_[static_cast<std::size_t>(j)];
      if (sj == VarState::AtLower && d < -options_.tolerance) return std::nullopt;
      if (sj == VarState::AtUpper && d > options_.tolerance) return std::nullopt;
    }
    switch (dual_repair()) {
      case Repair::GiveUp:
        return std::nullopt;  // stalled: distrust the basis, cold retry
      case Repair::Infeasible: {
        Solution result;
        result.status = SolveStatus::Infeasible;
        result.simplex_iterations = iterations_;
        result.factor_pivots = factor_pivots_;
        result.warm_started = true;
        return result;
      }
      case Repair::Done:
        break;
    }
  }

  // Phase II from a primal-feasible basis (recomputes reduced costs, so any
  // drift accumulated during repair is corrected).
  const SolveStatus status = iterate(costs);
  if (status == SolveStatus::IterationLimit) return std::nullopt;

  Solution result;
  result.simplex_iterations = iterations_;
  result.factor_pivots = factor_pivots_;
  result.warm_started = true;
  if (status == SolveStatus::Unbounded) {
    result.status = SolveStatus::Unbounded;
    return result;
  }
  recompute_basic_values();
  finish(result);
  return result;
}

Basis Tableau::extract_basis() const {
  Basis basis;
  basis.structural.assign(static_cast<std::size_t>(structural_),
                          VarState::AtLower);
  for (int j = 0; j < structural_; ++j) {
    basis.structural[static_cast<std::size_t>(j)] =
        state_[static_cast<std::size_t>(j)];
  }
  basis.basic.assign(static_cast<std::size_t>(rows_), -1);
  for (int i = 0; i < rows_; ++i) {
    const int col = basis_[static_cast<std::size_t>(i)];
    if (col < structural_) {
      basis.basic[static_cast<std::size_t>(i)] = col;
    } else if (col < artificial_begin_) {
      basis.basic[static_cast<std::size_t>(i)] =
          structural_ + slack_row_[static_cast<std::size_t>(col)];
    }
    // Artificial columns stay encoded as -1.
  }
  return basis;
}

}  // namespace

Solution solve_lp(const Model& model, const SimplexOptions& options) {
  return solve_lp(model, {}, {}, options);
}

Solution solve_lp(const Model& model, std::span<const double> lower,
                  std::span<const double> upper, const SimplexOptions& options,
                  const Basis* warm_start, bool emit_basis) {
  util::check(lower.empty() ||
                  lower.size() == static_cast<std::size_t>(model.num_variables()),
              "solve_lp: lower override size mismatch");
  util::check(upper.empty() ||
                  upper.size() == static_cast<std::size_t>(model.num_variables()),
              "solve_lp: upper override size mismatch");
  for (std::size_t j = 0; j < lower.size(); ++j) {
    if (lower[j] > upper[j]) {
      Solution infeasible;
      infeasible.status = SolveStatus::Infeasible;
      return infeasible;
    }
  }

  // Attempt the warm path first; any rejection (shape mismatch, singular
  // basis, dual-infeasible start, stalled repair) falls through to the cold
  // two-phase solve, carrying the wasted work in the diagnostics.
  std::int64_t warm_iterations = 0;
  std::int64_t warm_factor_pivots = 0;
  if (warm_start != nullptr && !warm_start->empty() &&
      warm_start->matches(model.num_variables(), model.num_constraints())) {
    Tableau tableau(model, lower, upper, options, *warm_start);
    warm_factor_pivots = tableau.factor_pivots();
    if (tableau.warm_ok()) {
      if (auto solution = tableau.solve_warm()) {
        if (emit_basis && solution->status == SolveStatus::Optimal) {
          solution->basis = tableau.extract_basis();
        }
        return *std::move(solution);
      }
      warm_iterations = tableau.iterations();
      warm_factor_pivots = tableau.factor_pivots();
    }
  }

  Tableau tableau(model, lower, upper, options);
  Solution solution = tableau.solve();
  solution.simplex_iterations += warm_iterations;
  solution.factor_pivots += warm_factor_pivots;
  if (emit_basis && solution.status == SolveStatus::Optimal) {
    solution.basis = tableau.extract_basis();
  }
  return solution;
}

}  // namespace birp::solver
