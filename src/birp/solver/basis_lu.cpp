#include "birp/solver/basis_lu.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace birp::solver {

void BasisLu::reset_identity(int rows) {
  rows_ = rows;
  etas_.clear();
  entry_row_.clear();
  entry_value_.clear();
  work_.assign(static_cast<std::size_t>(rows), 0.0);
  updates_since_factor_ = 0;
  factor_nnz_ = 0;
  update_nnz_ = 0;
}

void BasisLu::append_eta(std::span<const double> column, int pivot_row) {
  Eta eta;
  eta.pivot_row = pivot_row;
  eta.inv_pivot = 1.0 / column[static_cast<std::size_t>(pivot_row)];
  eta.begin = static_cast<int>(entry_row_.size());
  for (int i = 0; i < rows_; ++i) {
    if (i == pivot_row) continue;
    const double v = column[static_cast<std::size_t>(i)];
    if (v == 0.0) continue;
    entry_row_.push_back(i);
    entry_value_.push_back(v);
  }
  eta.end = static_cast<int>(entry_row_.size());
  etas_.push_back(eta);
}

bool BasisLu::factorize(const StandardForm& form,
                        std::span<const int> basic_cols,
                        double pivot_tolerance, double threshold,
                        std::vector<int>& basis_of_row) {
  reset_identity(form.rows);
  basis_of_row.assign(static_cast<std::size_t>(rows_), -1);

  // Sparsest-first column order: slack/artificial singletons become trivial
  // etas and leave the structural columns a mostly-eliminated tail. Ties
  // break by position so the elimination order — and therefore the floating
  // point result — is deterministic.
  std::vector<int> order(basic_cols.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return form.column_nnz(basic_cols[static_cast<std::size_t>(a)]) <
           form.column_nnz(basic_cols[static_cast<std::size_t>(b)]);
  });

  in_touched_.assign(static_cast<std::size_t>(rows_), 0);
  touched_.clear();
  const auto clear_touched = [&] {
    for (const int i : touched_) {
      work_[static_cast<std::size_t>(i)] = 0.0;
      in_touched_[static_cast<std::size_t>(i)] = 0;
    }
    touched_.clear();
  };

  std::vector<char> row_used(static_cast<std::size_t>(rows_), 0);
  for (const int idx : order) {
    const int col = basic_cols[static_cast<std::size_t>(idx)];
    const int begin = form.col_start[static_cast<std::size_t>(col)];
    const int end = form.col_start[static_cast<std::size_t>(col) + 1];

    // Fast path for the singleton columns (slacks / artificials) that make
    // up the bulk of any BIRP basis. A singleton at a still-unused row is
    // untouched by the eta file built so far (every eta's pivot row is a
    // used row, and only a pivot-row hit spreads), so it pivots at its own
    // row without any FTRAN — and a +1 entry is the identity elimination,
    // so it appends no eta at all. This keeps a refactorization's cost
    // proportional to the structural columns' fill, not rows * basis size.
    if (end - begin == 1) {
      const int row = form.row_index[static_cast<std::size_t>(begin)];
      if (!row_used[static_cast<std::size_t>(row)]) {
        const double v = form.values[static_cast<std::size_t>(begin)];
        if (v == 0.0) return false;  // structurally empty column
        if (v != 1.0) {
          Eta eta;
          eta.pivot_row = row;
          eta.inv_pivot = 1.0 / v;
          eta.begin = eta.end = static_cast<int>(entry_row_.size());
          etas_.push_back(eta);
        }
        ++factor_pivots_;
        row_used[static_cast<std::size_t>(row)] = 1;
        basis_of_row[static_cast<std::size_t>(row)] = col;
        continue;
      }
    }

    // General path: scatter the column and run it through the eta file,
    // tracking the rows it fills in. Sorting the touched set keeps the
    // pivot scan and the stored entry order identical to a dense sweep,
    // so the elimination is bit-for-bit the same as before.
    for (int p = begin; p < end; ++p) {
      const int row = form.row_index[static_cast<std::size_t>(p)];
      work_[static_cast<std::size_t>(row)] =
          form.values[static_cast<std::size_t>(p)];
      if (!in_touched_[static_cast<std::size_t>(row)]) {
        in_touched_[static_cast<std::size_t>(row)] = 1;
        touched_.push_back(row);
      }
    }
    ftran_tracked();
    std::sort(touched_.begin(), touched_.end());

    // Threshold partial pivoting over the rows not yet claimed: eligible
    // rows reach `threshold` of the column max; the smallest eligible row
    // index wins (deterministic, sparsity-neutral). Singularity is judged
    // relative to the transformed column's overall magnitude (and the raw
    // column norm, so full cancellation of an O(1) column is still caught)
    // rather than an absolute cutoff, so uniformly tiny columns factorize.
    double col_max = 0.0;
    double total_max = 0.0;
    for (const int i : touched_) {
      const double a = std::abs(work_[static_cast<std::size_t>(i)]);
      total_max = std::max(total_max, a);
      if (row_used[static_cast<std::size_t>(i)]) continue;
      col_max = std::max(col_max, a);
    }
    const double ref =
        std::max(total_max, form.col_scale[static_cast<std::size_t>(col)]);
    if (col_max <= pivot_tolerance * ref) {  // numerically singular
      clear_touched();
      return false;
    }
    int pivot_row = -1;
    for (const int i : touched_) {
      if (row_used[static_cast<std::size_t>(i)]) continue;
      if (std::abs(work_[static_cast<std::size_t>(i)]) >=
          threshold * col_max) {
        pivot_row = i;
        break;
      }
    }

    Eta eta;
    eta.pivot_row = pivot_row;
    eta.inv_pivot = 1.0 / work_[static_cast<std::size_t>(pivot_row)];
    eta.begin = static_cast<int>(entry_row_.size());
    for (const int i : touched_) {
      if (i == pivot_row) continue;
      const double v = work_[static_cast<std::size_t>(i)];
      if (v == 0.0) continue;
      entry_row_.push_back(i);
      entry_value_.push_back(v);
    }
    eta.end = static_cast<int>(entry_row_.size());
    etas_.push_back(eta);
    ++factor_pivots_;
    row_used[static_cast<std::size_t>(pivot_row)] = 1;
    basis_of_row[static_cast<std::size_t>(pivot_row)] = col;
    clear_touched();
  }
  factor_nnz_ = static_cast<std::int64_t>(entry_row_.size());
  return true;
}

void BasisLu::ftran_tracked() {
  for (const Eta& eta : etas_) {
    const double pivot_value =
        work_[static_cast<std::size_t>(eta.pivot_row)] * eta.inv_pivot;
    if (pivot_value == 0.0) continue;  // zero stays zero: nothing spreads
    work_[static_cast<std::size_t>(eta.pivot_row)] = pivot_value;
    for (int p = eta.begin; p < eta.end; ++p) {
      const int row = entry_row_[static_cast<std::size_t>(p)];
      work_[static_cast<std::size_t>(row)] -=
          entry_value_[static_cast<std::size_t>(p)] * pivot_value;
      if (!in_touched_[static_cast<std::size_t>(row)]) {
        in_touched_[static_cast<std::size_t>(row)] = 1;
        touched_.push_back(row);
      }
    }
  }
}

void BasisLu::ftran(std::span<double> x) const {
  for (const Eta& eta : etas_) {
    const double pivot_value =
        x[static_cast<std::size_t>(eta.pivot_row)] * eta.inv_pivot;
    x[static_cast<std::size_t>(eta.pivot_row)] = pivot_value;
    if (pivot_value == 0.0) continue;
    for (int p = eta.begin; p < eta.end; ++p) {
      x[static_cast<std::size_t>(entry_row_[static_cast<std::size_t>(p)])] -=
          entry_value_[static_cast<std::size_t>(p)] * pivot_value;
    }
  }
}

void BasisLu::btran(std::span<double> y) const {
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    const Eta& eta = *it;
    double accum = y[static_cast<std::size_t>(eta.pivot_row)];
    for (int p = eta.begin; p < eta.end; ++p) {
      accum -= entry_value_[static_cast<std::size_t>(p)] *
               y[static_cast<std::size_t>(entry_row_[static_cast<std::size_t>(p)])];
    }
    y[static_cast<std::size_t>(eta.pivot_row)] = accum * eta.inv_pivot;
  }
}

bool BasisLu::update(std::span<const double> alpha, int pivot_row,
                     double pivot_tolerance) {
  double col_max = 0.0;
  for (int i = 0; i < rows_; ++i) {
    col_max = std::max(col_max, std::abs(alpha[static_cast<std::size_t>(i)]));
  }
  const double pivot = alpha[static_cast<std::size_t>(pivot_row)];
  if (std::abs(pivot) <= pivot_tolerance * col_max) {
    return false;  // relatively too small to divide by: refactorize instead
  }
  const auto before = static_cast<std::int64_t>(entry_row_.size());
  append_eta(alpha, pivot_row);
  update_nnz_ += static_cast<std::int64_t>(entry_row_.size()) - before;
  ++updates_since_factor_;
  return true;
}

}  // namespace birp::solver
