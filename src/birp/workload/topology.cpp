#include "birp/workload/topology.hpp"

#include <algorithm>
#include <array>
#include <ostream>
#include <string>
#include <utility>

#include "birp/util/check.hpp"
#include "birp/util/csv.hpp"
#include "birp/util/rng.hpp"

namespace birp::workload {
namespace {

constexpr device::DeviceType kSkuCycle[3] = {device::DeviceType::JetsonNX,
                                             device::DeviceType::JetsonNano,
                                             device::DeviceType::Atlas200DK};

device::DeviceType type_from_int(int value) {
  util::check(value >= 0 && value <= 2, "Topology: bad device type");
  return static_cast<device::DeviceType>(value);
}

}  // namespace

int Topology::num_links() const {
  int links = 0;
  for (int a = 0; a < num_edges(); ++a) {
    for (int b = a + 1; b < num_edges(); ++b) {
      if (link_mbps(a, b) > 0.0) ++links;
    }
  }
  return links;
}

Topology generate_topology(const TopologyConfig& config) {
  util::check(config.edges > 0, "generate_topology: edges must be positive");
  util::check(config.attachment > 0,
              "generate_topology: attachment must be positive");
  util::check(config.link_jitter >= 0.0 && config.link_jitter < 1.0,
              "generate_topology: link_jitter must be in [0, 1)");

  const int N = config.edges;
  Topology topology;
  topology.devices.reserve(static_cast<std::size_t>(N));
  for (int id = 0; id < N; ++id) {
    topology.devices.push_back(
        device::make_device(kSkuCycle[id % 3], id, id / 3));
  }
  topology.link_mbps = util::Grid2<double>(N, N, 0.0);

  util::Xoshiro256StarStar rng(config.seed);
  const auto connect = [&](int a, int b) {
    const double base =
        std::min(topology.devices[static_cast<std::size_t>(a)].bandwidth_mbps,
                 topology.devices[static_cast<std::size_t>(b)].bandwidth_mbps);
    const double mbps =
        base * rng.uniform(1.0 - config.link_jitter, 1.0 + config.link_jitter);
    topology.link_mbps(a, b) = mbps;
    topology.link_mbps(b, a) = mbps;
  };

  // Barabási–Albert growth: a small seed clique, then each new node opens
  // `attachment` links toward existing nodes picked proportionally to degree
  // (repeat-sampled until distinct, bounded by the candidate count).
  const int clique = std::min(N, config.attachment + 1);
  for (int a = 0; a < clique; ++a) {
    for (int b = a + 1; b < clique; ++b) connect(a, b);
  }
  std::vector<std::int64_t> degree(static_cast<std::size_t>(N), 0);
  std::int64_t degree_total = 0;
  for (int a = 0; a < clique; ++a) {
    degree[static_cast<std::size_t>(a)] = clique - 1;
    degree_total += clique - 1;
  }
  for (int v = clique; v < N; ++v) {
    const int links = std::min(config.attachment, v);
    std::vector<int> chosen;
    chosen.reserve(static_cast<std::size_t>(links));
    while (static_cast<int>(chosen.size()) < links) {
      // Roulette wheel over current degrees (all positive once the clique
      // exists); re-spin on duplicates.
      std::int64_t ticket = rng.uniform_int(1, std::max<std::int64_t>(
                                                   1, degree_total));
      int pick = 0;
      for (int u = 0; u < v; ++u) {
        ticket -= degree[static_cast<std::size_t>(u)];
        if (ticket <= 0) {
          pick = u;
          break;
        }
      }
      if (std::find(chosen.begin(), chosen.end(), pick) != chosen.end()) {
        continue;
      }
      chosen.push_back(pick);
    }
    for (const int u : chosen) {
      connect(v, u);
      degree[static_cast<std::size_t>(u)] += 1;
      degree[static_cast<std::size_t>(v)] += 1;
      degree_total += 2;
    }
  }
  return topology;
}

device::ClusterSpec make_cluster(const Topology& topology,
                                 const TopologyConfig& config, double tau_s,
                                 std::uint64_t truth_seed) {
  return device::ClusterSpec(
      topology.devices,
      model::Zoo::synthetic(config.apps, config.variants_per_app, config.seed),
      tau_s, truth_seed);
}

void Topology::write_csv(std::ostream& out) const {
  util::CsvWriter writer(out);
  writer.row({"kind", "a", "b", "value"});
  for (int id = 0; id < num_edges(); ++id) {
    const auto& dev = devices[static_cast<std::size_t>(id)];
    // (type, instance) regenerate the profile exactly via make_device.
    writer.row({"device", std::to_string(static_cast<int>(dev.type)),
                std::to_string(dev.id), dev.name});
  }
  for (int a = 0; a < num_edges(); ++a) {
    for (int b = a + 1; b < num_edges(); ++b) {
      if (link_mbps(a, b) <= 0.0) continue;
      writer.row({"link", std::to_string(a), std::to_string(b),
                  util::format_double(link_mbps(a, b))});
    }
  }
}

Topology Topology::read_csv(const std::string& text) {
  const auto rows = util::parse_csv(text);
  util::check(!rows.empty(), "Topology::read_csv: empty document");

  std::vector<std::pair<int, int>> device_rows;  // (type, id)
  std::vector<std::array<double, 3>> link_rows;  // (a, b, mbps)
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    util::check(row.size() == 4, "Topology::read_csv: bad row width");
    if (row[0] == "device") {
      device_rows.emplace_back(std::stoi(row[1]), std::stoi(row[2]));
    } else if (row[0] == "link") {
      link_rows.push_back({std::stod(row[1]), std::stod(row[2]),
                           std::stod(row[3])});
    } else {
      util::check(false, "Topology::read_csv: unknown row kind");
    }
  }
  util::check(!device_rows.empty(), "Topology::read_csv: no devices");

  Topology topology;
  const int N = static_cast<int>(device_rows.size());
  topology.devices.reserve(device_rows.size());
  for (int id = 0; id < N; ++id) {
    const auto [type, stored_id] = device_rows[static_cast<std::size_t>(id)];
    util::check(stored_id == id, "Topology::read_csv: non-dense device ids");
    topology.devices.push_back(
        device::make_device(type_from_int(type), id, id / 3));
  }
  topology.link_mbps = util::Grid2<double>(N, N, 0.0);
  for (const auto& [a, b, mbps] : link_rows) {
    const int ia = static_cast<int>(a);
    const int ib = static_cast<int>(b);
    util::check(ia >= 0 && ia < N && ib >= 0 && ib < N && mbps > 0.0,
                "Topology::read_csv: bad link row");
    topology.link_mbps(ia, ib) = mbps;
    topology.link_mbps(ib, ia) = mbps;
  }
  return topology;
}

}  // namespace birp::workload
