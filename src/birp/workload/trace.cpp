#include "birp/workload/trace.hpp"

#include <ostream>

#include "birp/util/check.hpp"
#include "birp/util/csv.hpp"

namespace birp::workload {

Trace::Trace(int slots, int apps, int devices)
    : slots_(slots), apps_(apps), devices_(devices) {
  util::check(slots > 0 && apps > 0 && devices > 0, "Trace: bad dimensions");
  data_.assign(static_cast<std::size_t>(slots) * static_cast<std::size_t>(apps) *
                   static_cast<std::size_t>(devices),
               0);
}

std::size_t Trace::index(int slot, int app, int device) const {
  util::check(slot >= 0 && slot < slots_, "Trace: bad slot");
  util::check(app >= 0 && app < apps_, "Trace: bad app");
  util::check(device >= 0 && device < devices_, "Trace: bad device");
  return (static_cast<std::size_t>(slot) * static_cast<std::size_t>(apps_) +
          static_cast<std::size_t>(app)) *
             static_cast<std::size_t>(devices_) +
         static_cast<std::size_t>(device);
}

std::int64_t Trace::at(int slot, int app, int device) const {
  return data_[index(slot, app, device)];
}

void Trace::set(int slot, int app, int device, std::int64_t requests) {
  util::check(requests >= 0, "Trace: negative request count");
  auto& cell = data_[index(slot, app, device)];
  total_ += requests - cell;
  cell = requests;
}

std::int64_t Trace::slot_total(int slot) const {
  std::int64_t sum = 0;
  for (int i = 0; i < apps_; ++i) {
    for (int k = 0; k < devices_; ++k) sum += at(slot, i, k);
  }
  return sum;
}

std::vector<std::int64_t> Trace::edge_totals(int slot) const {
  std::vector<std::int64_t> totals(static_cast<std::size_t>(devices_), 0);
  for (int i = 0; i < apps_; ++i) {
    for (int k = 0; k < devices_; ++k) {
      totals[static_cast<std::size_t>(k)] += at(slot, i, k);
    }
  }
  return totals;
}

void Trace::write_csv(std::ostream& out) const {
  util::CsvWriter writer(out);
  writer.row({"slots", "apps", "devices"});
  writer.numeric_row({static_cast<double>(slots_), static_cast<double>(apps_),
                      static_cast<double>(devices_)});
  writer.row({"slot", "app", "device", "requests"});
  for (int t = 0; t < slots_; ++t) {
    for (int i = 0; i < apps_; ++i) {
      for (int k = 0; k < devices_; ++k) {
        const auto r = at(t, i, k);
        if (r == 0) continue;
        writer.numeric_row({static_cast<double>(t), static_cast<double>(i),
                            static_cast<double>(k), static_cast<double>(r)});
      }
    }
  }
}

Trace Trace::read_csv(const std::string& text) {
  const auto rows = util::parse_csv(text);
  util::check(rows.size() >= 3, "Trace::read_csv: truncated document");
  util::check(rows[1].size() == 3, "Trace::read_csv: bad dimension row");
  Trace trace(std::stoi(rows[1][0]), std::stoi(rows[1][1]),
              std::stoi(rows[1][2]));
  for (std::size_t r = 3; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() == 1 && row[0].empty()) continue;  // trailing blank line
    util::check(row.size() == 4, "Trace::read_csv: bad data row");
    trace.set(std::stoi(row[0]), std::stoi(row[1]), std::stoi(row[2]),
              std::stoll(row[3]));
  }
  return trace;
}

}  // namespace birp::workload
