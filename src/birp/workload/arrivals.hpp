// Per-request arrival-timestamp expansion of a slot-indexed trace.
//
// The slot trace only says "r requests of app i arrived at edge k during
// slot t"; the serving runtime (birp/serve) needs *when* inside the slot
// each request arrived. This module expands each (slot, app, device) count
// into sorted uniform arrival offsets over [0, tau), drawn from a
// per-(slot, app, device) forked RNG stream so the expansion is
// deterministic, independent of iteration order, and stable when other
// cells of the trace change.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "birp/workload/trace.hpp"

namespace birp::workload {

/// One timestamped request arrival.
struct Arrival {
  int slot = 0;
  int app = 0;
  int device = 0;       ///< edge whose region the request arrived in
  std::int64_t seq = 0; ///< arrival index within the (slot, app, device) cell
  double offset_s = 0.0;///< arrival offset from the slot start, in [0, tau)

  friend bool operator==(const Arrival&, const Arrival&) = default;
};

/// Expands one slot of `trace` into timestamped arrivals, sorted by
/// (offset_s, app, device, seq). `seed` selects the expansion; the same
/// (trace cell, seed) always yields the same offsets.
[[nodiscard]] std::vector<Arrival> slot_arrivals(const Trace& trace, int slot,
                                                 double tau_s,
                                                 std::uint64_t seed);

/// Expands every slot (concatenation of slot_arrivals over the horizon).
[[nodiscard]] std::vector<Arrival> expand_arrivals(const Trace& trace,
                                                   double tau_s,
                                                   std::uint64_t seed);

/// CSV round-trip: header "slot,app,device,seq,offset_s"; one row per
/// request. Inverse of read_arrivals_csv.
void write_arrivals_csv(std::ostream& out, const std::vector<Arrival>& arrivals);
[[nodiscard]] std::vector<Arrival> read_arrivals_csv(const std::string& text);

}  // namespace birp::workload
