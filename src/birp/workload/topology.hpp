// Synthetic large-cluster topology generator.
//
// The paper's testbed is six hand-picked devices; the birp/cluster benches
// need hundreds. This generator grows a seeded scale-free inter-edge
// bandwidth graph (Barabási–Albert preferential attachment — a handful of
// well-connected aggregation edges, a long tail of leaves, matching how edge
// sites attach to metro networks) over N devices cycled through the paper's
// three accelerator SKUs, so cluster benches and tests never hand-roll
// specs. Deterministic in the config; CSV round-trip for artifact sharing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "birp/device/cluster.hpp"
#include "birp/device/profile.hpp"
#include "birp/model/zoo.hpp"
#include "birp/util/grid.hpp"

namespace birp::workload {

struct TopologyConfig {
  int edges = 100;          ///< N devices
  int apps = 10;            ///< M applications in the paired synthetic zoo
  int variants_per_app = 2; ///< model ladder depth per application
  /// Links each newly attached node opens toward existing nodes
  /// (Barabási–Albert m); clamped to the nodes already present.
  int attachment = 2;
  /// Multiplicative jitter on link bandwidth around min(endpoint uplinks).
  double link_jitter = 0.25;
  std::uint64_t seed = 0x70b0;
};

/// A generated topology: device profiles plus the symmetric inter-edge link
/// bandwidth graph the partitioner cuts (0 = no direct link).
struct Topology {
  std::vector<device::DeviceProfile> devices;
  util::Grid2<double> link_mbps;  ///< [device][device], symmetric, 0 diagonal

  [[nodiscard]] int num_edges() const noexcept {
    return static_cast<int>(devices.size());
  }
  /// Links with nonzero bandwidth (each undirected link counted once).
  [[nodiscard]] int num_links() const;

  /// CSV round-trip. Devices are stored as (type, instance) and regenerated
  /// through device::make_device — per-instance jitter is deterministic in
  /// (type, instance), so the round-trip reproduces profiles exactly.
  void write_csv(std::ostream& out) const;
  [[nodiscard]] static Topology read_csv(const std::string& text);
};

/// Generates the seeded scale-free topology for `config`.
[[nodiscard]] Topology generate_topology(const TopologyConfig& config);

/// Builds the ClusterSpec for a topology: its devices plus a synthetic zoo
/// of config.apps x config.variants_per_app models (model::Zoo::synthetic).
[[nodiscard]] device::ClusterSpec make_cluster(const Topology& topology,
                                               const TopologyConfig& config,
                                               double tau_s = 6.0,
                                               std::uint64_t truth_seed = 0x10b5);

}  // namespace birp::workload
