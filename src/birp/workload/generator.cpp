#include "birp/workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "birp/util/check.hpp"
#include "birp/util/rng.hpp"

namespace birp::workload {

Trace generate(const device::ClusterSpec& cluster,
               const GeneratorConfig& config) {
  util::check(config.slots > 0, "generate: slots must be positive");
  util::check(config.mean_per_edge > 0.0, "generate: mean must be positive");
  util::check(config.hot_edge_factor >= 1.0, "generate: hot factor >= 1");

  const int K = cluster.num_devices();
  const int I = cluster.num_apps();
  Trace trace(config.slots, I, K);
  util::Xoshiro256StarStar rng(config.seed);

  // Persistent per-edge heat: edges are spread geometrically between 1 and
  // hot_edge_factor, then shuffled so heat does not correlate with device
  // type. Normalized to mean 1 so mean_per_edge keeps its meaning.
  std::vector<double> heat(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    const double frac = K == 1 ? 0.0 : static_cast<double>(k) / (K - 1);
    heat[static_cast<std::size_t>(k)] =
        std::pow(config.hot_edge_factor, frac);
  }
  rng.shuffle(heat);
  double heat_mean = 0.0;
  for (const double h : heat) heat_mean += h;
  heat_mean /= static_cast<double>(K);
  for (double& h : heat) h /= heat_mean;

  // Per-app popularity shares (deterministic per seed), normalized to mean 1.
  std::vector<double> share(static_cast<std::size_t>(I));
  double share_mean = 0.0;
  for (int i = 0; i < I; ++i) {
    share[static_cast<std::size_t>(i)] = rng.uniform(0.5, 1.5);
    share_mean += share[static_cast<std::size_t>(i)];
  }
  share_mean /= static_cast<double>(I);
  for (double& s : share) s /= share_mean;

  // Per-edge diurnal phase: regions peak at different times of day, which is
  // precisely what creates the redistribution opportunity.
  std::vector<double> phase(static_cast<std::size_t>(K));
  for (double& p : phase) p = rng.uniform(0.0, 1.0);

  if (config.flash_start >= 0) {
    util::check(config.flash_duration > 0,
                "generate: flash_duration must be positive");
    util::check(config.flash_edge_fraction > 0.0 &&
                    config.flash_edge_fraction <= 1.0,
                "generate: flash_edge_fraction must be in (0, 1]");
    util::check(config.flash_scale >= 0.0,
                "generate: flash_scale must be >= 0");
  }

  for (int t = 0; t < config.slots; ++t) {
    for (int k = 0; k < K; ++k) {
      const double day_pos =
          static_cast<double>(t) / static_cast<double>(config.slots_per_day) +
          phase[static_cast<std::size_t>(k)];
      const double diurnal =
          1.0 + config.diurnal_amplitude *
                    std::sin(2.0 * std::numbers::pi * day_pos);
      const bool burst = rng.bernoulli(config.burst_probability);
      const double burst_mult = burst ? config.burst_scale : 1.0;
      for (int i = 0; i < I; ++i) {
        const double mean = config.mean_per_edge *
                            heat[static_cast<std::size_t>(k)] *
                            share[static_cast<std::size_t>(i)] * diurnal *
                            burst_mult;
        trace.set(t, i, k, rng.poisson(mean));
      }
    }
  }

  // Flash-crowd overlay: additive extra arrivals from a dedicated RNG
  // stream, so disabling it leaves every base draw (and thus the whole
  // trace) byte-identical.
  if (config.flash_start >= 0 && config.flash_scale > 0.0) {
    util::Xoshiro256StarStar crowd_rng(config.seed ^ 0xf1a5'c0d5ULL);
    std::vector<int> edges(static_cast<std::size_t>(K));
    for (int k = 0; k < K; ++k) edges[static_cast<std::size_t>(k)] = k;
    crowd_rng.shuffle(edges);
    const int hit = std::max(
        1, static_cast<int>(config.flash_edge_fraction *
                            static_cast<double>(K)));
    const int from = std::max(0, config.flash_start);
    const int to = std::min(config.slots,
                            config.flash_start + config.flash_duration);
    for (int t = from; t < to; ++t) {
      // Triangular envelope: ramp to flash_scale mid-crowd, back to zero.
      const double pos = (static_cast<double>(t - config.flash_start) + 0.5) /
                         static_cast<double>(config.flash_duration);
      const double envelope = 1.0 - std::abs(2.0 * pos - 1.0);
      for (int e = 0; e < hit; ++e) {
        const int k = edges[static_cast<std::size_t>(e)];
        for (int i = 0; i < I; ++i) {
          const double extra_mean = config.mean_per_edge *
                                    share[static_cast<std::size_t>(i)] *
                                    config.flash_scale * envelope;
          if (extra_mean <= 0.0) continue;
          trace.set(t, i, k,
                    trace.at(t, i, k) + crowd_rng.poisson(extra_mean));
        }
      }
    }
  }
  return trace;
}

double suggested_mean_per_edge(const device::ClusterSpec& cluster,
                               double target_utilization) {
  util::check(target_utilization > 0.0, "target utilization must be positive");
  const int K = cluster.num_devices();
  const int I = cluster.num_apps();

  // Per-edge serving envelope: compute capacity (Eq. 8) at the saturated
  // batch of a mid-sized variant. Under the time-sliced memory model
  // (weights sum + peak in-flight batch) memory gates which models can be
  // co-resident but not the per-slot request count, so compute is the
  // throughput-limiting resource the experiments load against.
  double envelope_total = 0.0;
  for (int k = 0; k < K; ++k) {
    double compute_per_request_s = 0.0;
    double structural_cap = 0.0;  // one batch <= beta per model per slot
    for (int i = 0; i < I; ++i) {
      const int variants = cluster.zoo().num_variants(i);
      const int mid = variants / 2;
      const auto& tir = cluster.oracle_tir(k, i, mid);
      compute_per_request_s += cluster.gamma_s(k, i, mid) / tir.tir(tir.beta);
      double app_cap = 0.0;
      for (int j = 0; j < variants; ++j) {
        app_cap += std::min(16, cluster.oracle_tir(k, i, j).beta);
      }
      structural_cap += app_cap;
    }
    compute_per_request_s /= static_cast<double>(I);
    const double compute_cap = cluster.tau_s() / compute_per_request_s;
    // Eq. 5 merges each app's requests into a single batch per model per
    // slot, so an edge can never serve more than sum_j beta per app even
    // with idle compute; the envelope honors whichever bound is tighter.
    envelope_total += std::min(compute_cap, structural_cap);
  }
  const double envelope_per_edge = envelope_total / static_cast<double>(K);
  return target_utilization * envelope_per_edge / static_cast<double>(I);
}

}  // namespace birp::workload
