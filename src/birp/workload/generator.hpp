// Synthetic inference workload generator.
//
// Substitute for the production MLaaS trace the paper replays ([34], Alibaba
// GPU-cluster trace). The generator reproduces the trace properties the
// evaluation depends on:
//   * diurnal intensity (sinusoidal day/night cycle over the slot horizon),
//   * per-edge skew (persistent hot and idle edges -> redistribution value),
//   * short bursts (transient overload -> SLO pressure and batching value),
//   * Poisson arrival noise around the modulated mean.
#pragma once

#include <cstdint>

#include "birp/device/cluster.hpp"
#include "birp/workload/trace.hpp"

namespace birp::workload {

struct GeneratorConfig {
  int slots = 300;              ///< horizon T (paper: 3 days of 15-min slots)
  int slots_per_day = 96;       ///< slots forming one diurnal period
  double mean_per_edge = 24.0;  ///< mean requests per (edge, app) per slot
  double diurnal_amplitude = 0.35;  ///< day/night swing as fraction of mean
  double hot_edge_factor = 1.6;     ///< hottest-to-coldest edge intensity ratio
  double burst_probability = 0.05;  ///< per-(slot, edge) burst chance
  double burst_scale = 1.5;         ///< burst intensity multiplier
  std::uint64_t seed = 0x77ace;
};

/// Generates a trace for `cluster`'s dimensions.
[[nodiscard]] Trace generate(const device::ClusterSpec& cluster,
                             const GeneratorConfig& config);

/// Suggests `mean_per_edge` so that, when every edge serves its own region
/// with mid-sized models at their saturated batch size, average accelerator
/// busy time is `target_utilization` of the slot. Uses oracle TIR — this is
/// experiment setup, not scheduler knowledge.
[[nodiscard]] double suggested_mean_per_edge(const device::ClusterSpec& cluster,
                                             double target_utilization);

}  // namespace birp::workload
