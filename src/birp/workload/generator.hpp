// Synthetic inference workload generator.
//
// Substitute for the production MLaaS trace the paper replays ([34], Alibaba
// GPU-cluster trace). The generator reproduces the trace properties the
// evaluation depends on:
//   * diurnal intensity (sinusoidal day/night cycle over the slot horizon),
//   * per-edge skew (persistent hot and idle edges -> redistribution value),
//   * short bursts (transient overload -> SLO pressure and batching value),
//   * Poisson arrival noise around the modulated mean.
#pragma once

#include <cstdint>

#include "birp/device/cluster.hpp"
#include "birp/workload/trace.hpp"

namespace birp::workload {

struct GeneratorConfig {
  int slots = 300;              ///< horizon T (paper: 3 days of 15-min slots)
  int slots_per_day = 96;       ///< slots forming one diurnal period
  double mean_per_edge = 24.0;  ///< mean requests per (edge, app) per slot
  double diurnal_amplitude = 0.35;  ///< day/night swing as fraction of mean
  double hot_edge_factor = 1.6;     ///< hottest-to-coldest edge intensity ratio
  double burst_probability = 0.05;  ///< per-(slot, edge) burst chance
  double burst_scale = 1.5;         ///< burst intensity multiplier
  std::uint64_t seed = 0x77ace;

  // Optional flash-crowd overlay (chaos-harness stressor): one regional
  // demand spike layered additively on the base trace. A seeded subset of
  // edges receives extra Poisson arrivals that ramp up and back down over
  // [flash_start, flash_start + flash_duration) with a triangular envelope
  // peaking at flash_scale x the slot mean. The overlay draws from its own
  // RNG stream, so flash_start = -1 (disabled) leaves the base trace
  // byte-identical.
  int flash_start = -1;               ///< first slot of the crowd; -1 disables
  int flash_duration = 12;            ///< slots the crowd lasts
  double flash_scale = 2.0;           ///< peak extra mean / base mean
  double flash_edge_fraction = 0.35;  ///< seeded fraction of edges hit
};

/// Generates a trace for `cluster`'s dimensions.
[[nodiscard]] Trace generate(const device::ClusterSpec& cluster,
                             const GeneratorConfig& config);

/// Suggests `mean_per_edge` so that, when every edge serves its own region
/// with mid-sized models at their saturated batch size, average accelerator
/// busy time is `target_utilization` of the slot. Uses oracle TIR — this is
/// experiment setup, not scheduler knowledge.
[[nodiscard]] double suggested_mean_per_edge(const device::ClusterSpec& cluster,
                                             double target_utilization);

}  // namespace birp::workload
