#include "birp/workload/arrivals.hpp"

#include <algorithm>
#include <ostream>

#include "birp/util/check.hpp"
#include "birp/util/csv.hpp"
#include "birp/util/rng.hpp"

namespace birp::workload {
namespace {

/// Mixes (slot, app, device) into one stream id; the large odd multipliers
/// keep sibling cells far apart in seed space (same recipe family as the
/// simulator's per-(slot, edge) noise streams).
std::uint64_t cell_stream(int slot, int app, int device) {
  return 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(slot) + 1) +
         0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(app) + 1) +
         0x94d049bb133111ebULL * (static_cast<std::uint64_t>(device) + 1);
}

}  // namespace

std::vector<Arrival> slot_arrivals(const Trace& trace, int slot, double tau_s,
                                   std::uint64_t seed) {
  util::check(slot >= 0 && slot < trace.slots(), "slot_arrivals: bad slot");
  util::check(tau_s > 0.0, "slot_arrivals: tau must be positive");
  std::vector<Arrival> arrivals;
  for (int i = 0; i < trace.apps(); ++i) {
    for (int k = 0; k < trace.devices(); ++k) {
      const auto count = trace.at(slot, i, k);
      if (count <= 0) continue;
      util::Xoshiro256StarStar rng(seed ^ cell_stream(slot, i, k));
      std::vector<double> offsets;
      offsets.reserve(static_cast<std::size_t>(count));
      for (std::int64_t r = 0; r < count; ++r) {
        offsets.push_back(rng.uniform(0.0, tau_s));
      }
      std::sort(offsets.begin(), offsets.end());
      for (std::int64_t r = 0; r < count; ++r) {
        arrivals.push_back(Arrival{slot, i, k, r,
                                   offsets[static_cast<std::size_t>(r)]});
      }
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) {
              if (a.offset_s != b.offset_s) return a.offset_s < b.offset_s;
              if (a.app != b.app) return a.app < b.app;
              if (a.device != b.device) return a.device < b.device;
              return a.seq < b.seq;
            });
  return arrivals;
}

std::vector<Arrival> expand_arrivals(const Trace& trace, double tau_s,
                                     std::uint64_t seed) {
  std::vector<Arrival> all;
  all.reserve(static_cast<std::size_t>(trace.total()));
  for (int t = 0; t < trace.slots(); ++t) {
    auto slot = slot_arrivals(trace, t, tau_s, seed);
    all.insert(all.end(), slot.begin(), slot.end());
  }
  return all;
}

void write_arrivals_csv(std::ostream& out,
                        const std::vector<Arrival>& arrivals) {
  util::CsvWriter writer(out);
  writer.row({"slot", "app", "device", "seq", "offset_s"});
  for (const auto& a : arrivals) {
    writer.numeric_row({static_cast<double>(a.slot), static_cast<double>(a.app),
                        static_cast<double>(a.device),
                        static_cast<double>(a.seq), a.offset_s});
  }
}

std::vector<Arrival> read_arrivals_csv(const std::string& text) {
  const auto rows = util::parse_csv(text);
  util::check(!rows.empty(), "read_arrivals_csv: empty document");
  std::vector<Arrival> arrivals;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() == 1 && row[0].empty()) continue;  // trailing blank line
    util::check(row.size() == 5, "read_arrivals_csv: bad data row");
    Arrival a;
    a.slot = std::stoi(row[0]);
    a.app = std::stoi(row[1]);
    a.device = std::stoi(row[2]);
    a.seq = std::stoll(row[3]);
    a.offset_s = std::stod(row[4]);
    arrivals.push_back(a);
  }
  return arrivals;
}

}  // namespace birp::workload
