// Slot-indexed inference workload trace: r[t][i][k] = number of requests of
// application i arriving in edge k's region during slot t (the paper's
// r^t_{ik}).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace birp::workload {

class Trace {
 public:
  Trace(int slots, int apps, int devices);

  [[nodiscard]] int slots() const noexcept { return slots_; }
  [[nodiscard]] int apps() const noexcept { return apps_; }
  [[nodiscard]] int devices() const noexcept { return devices_; }

  [[nodiscard]] std::int64_t at(int slot, int app, int device) const;
  void set(int slot, int app, int device, std::int64_t requests);

  /// Total requests arriving in `slot` across all apps and edges.
  [[nodiscard]] std::int64_t slot_total(int slot) const;
  /// Total requests of app `app` at edge `device` in `slot`'s column... sum
  /// across slots.
  [[nodiscard]] std::int64_t total() const noexcept { return total_; }

  /// Per-edge totals within one slot (imbalance diagnostics).
  [[nodiscard]] std::vector<std::int64_t> edge_totals(int slot) const;

  /// CSV round-trip: header "slot,app,device,requests"; zero entries omitted.
  void write_csv(std::ostream& out) const;
  [[nodiscard]] static Trace read_csv(const std::string& text);

 private:
  [[nodiscard]] std::size_t index(int slot, int app, int device) const;

  int slots_;
  int apps_;
  int devices_;
  std::int64_t total_ = 0;
  std::vector<std::int64_t> data_;
};

}  // namespace birp::workload
