// Circuit-breaker state machine for one (app, edge) pair.
//
// Outcomes from the serving path (request met its SLO / failed it) are
// recorded during the slot; `advance` runs once at the slot boundary and
// performs at most one transition. See BreakerConfig for the semantics of
// the three states.
#pragma once

#include <cstdint>
#include <deque>

#include "birp/guard/config.hpp"

namespace birp::guard {

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

class CircuitBreaker {
 public:
  CircuitBreaker() = default;
  explicit CircuitBreaker(const BreakerConfig& config) : config_(config) {}

  [[nodiscard]] BreakerState state() const noexcept { return state_; }
  /// Redistribution / retries should avoid this pair (open only — a
  /// half-open breaker deliberately lets probe traffic through).
  [[nodiscard]] bool avoid() const noexcept {
    return state_ == BreakerState::kOpen;
  }

  /// Records this slot's serving-path outcomes for the pair.
  void record(std::int64_t total, std::int64_t failed) noexcept {
    slot_total_ += total;
    slot_failed_ += failed;
  }

  /// What `advance` did at the last slot boundary.
  struct Transition {
    bool tripped = false;     ///< closed -> open
    bool reopened = false;    ///< half-open -> open
    bool probed = false;      ///< open -> half-open
    bool recovered = false;   ///< half-open -> closed
  };

  /// Slot-boundary evaluation: folds the slot's outcomes into the sliding
  /// window and applies at most one transition.
  Transition advance();

  /// Window totals (diagnostics / tests).
  [[nodiscard]] std::int64_t window_total() const noexcept;
  [[nodiscard]] std::int64_t window_failed() const noexcept;

 private:
  struct SlotSample {
    std::int64_t total = 0;
    std::int64_t failed = 0;
  };

  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  std::deque<SlotSample> window_;
  std::int64_t slot_total_ = 0;
  std::int64_t slot_failed_ = 0;
  int open_for_ = 0;  ///< slots spent in the open state
};

}  // namespace birp::guard
