// Shared sojourn-prediction model for the serving runtime's protective and
// adaptive layers.
//
// Both the deadline-aware admission gate (guard::GuardController::admit) and
// the SLO-aware adaptive batcher (serve::AdaptiveBatcher) need the same two
// estimates:
//   * how long a launch of b members takes under the believed latency curve
//     gamma * (1 + c * (b - 1)) — the marginal-cost stand-in for the full
//     TIR belief, and
//   * how long a request will have been in the system when its launch
//     completes, given the accelerator backlog and the batches queued ahead.
// Keeping the formulas in one place means the gate's shed decisions and the
// batcher's seal decisions can never drift apart.
#pragma once

#include <algorithm>
#include <cstdint>

namespace birp::guard {

/// Believed execution latency of one launch of `b` members whose serial
/// latency is `gamma_s`: gamma * (1 + marginal_cost * (b - 1)). A follower
/// request costs `marginal_cost` of a serial run, mirroring the TIR curve's
/// diminishing per-request cost without the full eta/beta belief.
[[nodiscard]] inline double batch_latency_s(double gamma_s,
                                            double marginal_cost, int b) {
  const auto members = static_cast<double>(std::max(1, b));
  return gamma_s * (1.0 + marginal_cost * (members - 1.0));
}

/// Predicted end-to-end sojourn of a request that entered the system at
/// `arrival_s`, becomes executable at `available_s`, and joins behind
/// `buffered` same-app requests batched `b` at a time, on an accelerator
/// whose already-dispatched launches finish at `accel_free_s`. The request
/// rides in batch number buffered / b + 1 (1-based) of the deployment's
/// launch sequence, which cannot start before both the request is available
/// and the backlog has drained.
[[nodiscard]] inline double predicted_sojourn_s(double arrival_s,
                                                double available_s,
                                                double accel_free_s,
                                                std::int64_t buffered, int b,
                                                double batch_latency) {
  const auto batch = static_cast<std::int64_t>(std::max(1, b));
  const double batches_ahead = static_cast<double>(buffered / batch + 1);
  return (std::max(accel_free_s, available_s) - arrival_s) +
         batches_ahead * batch_latency;
}

}  // namespace birp::guard
