#include "birp/guard/controller.hpp"

#include <algorithm>

#include "birp/guard/sojourn.hpp"
#include "birp/util/check.hpp"

namespace birp::guard {

void validate(const GuardConfig& config) {
  util::check(config.admission.slack > 0.0,
              "guard config: admission slack must be > 0");
  util::check(config.admission.marginal_batch_cost >= 0.0,
              "guard config: marginal batch cost must be >= 0");
  util::check(config.breaker.window_slots >= 1,
              "guard config: breaker window must be >= 1 slot");
  util::check(config.breaker.min_samples >= 1,
              "guard config: breaker min samples must be >= 1");
  util::check(config.breaker.trip_threshold >= 0.0 &&
                  config.breaker.trip_threshold <= 1.0,
              "guard config: breaker trip threshold outside [0, 1]");
  util::check(config.breaker.open_slots >= 1,
              "guard config: breaker open window must be >= 1 slot");
  util::check(config.degradation.stress_shed_fraction >= 0.0 &&
                  config.degradation.stress_shed_fraction <= 1.0,
              "guard config: stress shed fraction outside [0, 1]");
  util::check(config.degradation.recovery_slots >= 1,
              "guard config: recovery window must be >= 1 slot");
}

GuardController::GuardController(
    const device::ClusterSpec& cluster, const GuardConfig& config,
    std::shared_ptr<const predictor::LatencyPredictor> predictor)
    : config_(config),
      apps_(cluster.num_apps()),
      devices_(cluster.num_devices()),
      max_variants_(cluster.zoo().max_variants()) {
  validate(config_);
  gamma_s_.assign(static_cast<std::size_t>(apps_) *
                      static_cast<std::size_t>(devices_) *
                      static_cast<std::size_t>(max_variants_),
                  0.0);
  for (int k = 0; k < devices_; ++k) {
    for (int i = 0; i < apps_; ++i) {
      const int J = cluster.zoo().num_variants(i);
      for (int j = 0; j < J; ++j) {
        gamma_s_[gamma_index(k, i, j)] =
            predictor ? predictor->predict_gamma_s(k, i, j)
                      : cluster.gamma_s(k, i, j);
      }
    }
  }
  slo_s_.resize(static_cast<std::size_t>(apps_));
  num_variants_.resize(static_cast<std::size_t>(apps_));
  for (int i = 0; i < apps_; ++i) {
    slo_s_[static_cast<std::size_t>(i)] =
        cluster.zoo().app(i).slo_fraction * cluster.tau_s();
    num_variants_[static_cast<std::size_t>(i)] = cluster.zoo().num_variants(i);
  }
  breakers_.assign(static_cast<std::size_t>(apps_) *
                       static_cast<std::size_t>(devices_),
                   CircuitBreaker(config_.breaker));
  level_.assign(static_cast<std::size_t>(apps_), 0);
  calm_slots_.assign(static_cast<std::size_t>(apps_), 0);
  rebuild_hints();
}

void GuardController::rebuild_hints() {
  hints_.avoid_import = util::Grid2<std::uint8_t>(apps_, devices_, 0);
  hints_.variant_cap.assign(static_cast<std::size_t>(apps_), -1);
  if (config_.breaker.enabled) {
    for (int i = 0; i < apps_; ++i) {
      for (int k = 0; k < devices_; ++k) {
        if (breakers_[cell(i, k)].avoid()) hints_.avoid_import(i, k) = 1;
      }
    }
  }
  if (config_.degradation.enabled) {
    for (int i = 0; i < apps_; ++i) {
      const int level = level_[static_cast<std::size_t>(i)];
      if (level > 0) {
        // Level L removes the L most expensive variants; the cheapest
        // variant (index 0) always survives, so the app stays servable.
        const int J = num_variants_[static_cast<std::size_t>(i)];
        hints_.variant_cap[static_cast<std::size_t>(i)] =
            std::max(0, J - 1 - level);
      }
    }
  }
}

const sim::SchedulerHints& GuardController::begin_slot(int slot) {
  (void)slot;
  rebuild_hints();
  return hints_;
}

bool GuardController::admit(int edge, int app, int variant, int kernel,
                            double arrival_s, double available_s,
                            double accel_free_s, std::int64_t buffered) const {
  if (!config_.admission.enabled) return true;
  const double gamma = gamma_s_[gamma_index(edge, app, variant)];
  const double batch_latency = batch_latency_s(
      gamma, config_.admission.marginal_batch_cost, kernel);
  const double predicted_sojourn = predicted_sojourn_s(
      arrival_s, available_s, accel_free_s, buffered, kernel, batch_latency);
  return predicted_sojourn <=
         config_.admission.slack * slo_s_[static_cast<std::size_t>(app)];
}

GuardController::SlotSummary GuardController::end_slot(
    const util::Grid2<CellStats>& cells,
    const std::vector<std::int64_t>& app_demand,
    const std::vector<std::int64_t>& app_shed) {
  util::check(cells.rows() == apps_ && cells.cols() == devices_,
              "GuardController: cell stats shape mismatch");
  util::check(static_cast<int>(app_demand.size()) == apps_ &&
                  static_cast<int>(app_shed.size()) == apps_,
              "GuardController: per-app totals shape mismatch");
  SlotSummary summary;

  if (config_.breaker.enabled) {
    for (int i = 0; i < apps_; ++i) {
      for (int k = 0; k < devices_; ++k) {
        auto& breaker = breakers_[cell(i, k)];
        const auto& stats = cells(i, k);
        breaker.record(stats.total, stats.failed);
        const auto transition = breaker.advance();
        summary.trips += transition.tripped ? 1 : 0;
        summary.reopens += transition.reopened ? 1 : 0;
        summary.probes += transition.probed ? 1 : 0;
        summary.recoveries += transition.recovered ? 1 : 0;
      }
    }
  }

  if (config_.degradation.enabled) {
    for (int i = 0; i < apps_; ++i) {
      const auto demand = app_demand[static_cast<std::size_t>(i)];
      const auto shed = app_shed[static_cast<std::size_t>(i)];
      const bool shed_stress =
          demand > 0 &&
          static_cast<double>(shed) >=
              config_.degradation.stress_shed_fraction *
                  static_cast<double>(demand);
      bool breaker_stress = false;
      if (config_.breaker.enabled) {
        for (int k = 0; k < devices_ && !breaker_stress; ++k) {
          breaker_stress = breakers_[cell(i, k)].state() == BreakerState::kOpen;
        }
      }
      auto& level = level_[static_cast<std::size_t>(i)];
      auto& calm = calm_slots_[static_cast<std::size_t>(i)];
      if ((shed_stress && shed > 0) || breaker_stress) {
        // One rung per stressed slot, never past "cheapest variant only".
        const int max_level =
            std::max(0, num_variants_[static_cast<std::size_t>(i)] - 1);
        level = std::min(level + 1, max_level);
        calm = 0;
      } else if (level > 0) {
        if (++calm >= config_.degradation.recovery_slots) {
          --level;
          calm = 0;
        }
      } else {
        calm = 0;
      }
    }
  }

  for (int i = 0; i < apps_; ++i) {
    const int level = level_[static_cast<std::size_t>(i)];
    summary.degraded_apps += level > 0 ? 1 : 0;
    summary.max_level = std::max(summary.max_level, level);
  }
  return summary;
}

BreakerState GuardController::breaker_state(int app, int edge) const {
  return breakers_[cell(app, edge)].state();
}

int GuardController::degradation_level(int app) const {
  return level_[static_cast<std::size_t>(app)];
}

}  // namespace birp::guard
