// GuardController: the per-run overload-protection state machine threaded
// through the serving runtime.
//
// Slot lifecycle, mirroring ServeEngine::step:
//
//   begin_slot(t)  -> SchedulerHints  (breaker avoid mask + ladder caps,
//                     handed to the scheduler and to failover re-admission)
//   admit(...)     -> called from the per-edge execution paths (const and
//                     thread-safe: reads only immutable tables) to decide
//                     whether a request enters the admission queue or is
//                     shed at its deadline.
//   end_slot(...)  -> fed the slot's per-(app, edge) serving outcomes and
//                     per-app shed totals; advances every breaker and the
//                     degradation ladder, returns the transition counts for
//                     metrics.
//
// Determinism: the controller draws no randomness; its state is a pure
// function of the (deterministic) outcome stream, so runs are bit-identical
// across thread counts.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "birp/device/cluster.hpp"
#include "birp/guard/breaker.hpp"
#include "birp/guard/config.hpp"
#include "birp/predictor/latency_predictor.hpp"
#include "birp/sim/scheduler.hpp"
#include "birp/util/grid.hpp"

namespace birp::guard {

class GuardController {
 public:
  /// `predictor` supplies the believed batch latencies for the admission
  /// formula (the nn-Meter role); null falls back to the cluster's exact
  /// gamma table (an oracle admission controller).
  GuardController(
      const device::ClusterSpec& cluster, const GuardConfig& config,
      std::shared_ptr<const predictor::LatencyPredictor> predictor = nullptr);

  [[nodiscard]] const GuardConfig& config() const noexcept { return config_; }

  /// Slot start: rebuilds and returns the scheduler hints reflecting the
  /// current breaker states and ladder levels. Valid until the next call.
  const sim::SchedulerHints& begin_slot(int slot);

  /// Deadline-aware admission verdict for a request of app `app` about to
  /// enter edge `edge`'s queue, to be served by deployment (variant,
  /// kernel) with `buffered` requests of the app already waiting ahead of
  /// it. `arrival_s` is when the request entered the system (SLO clock
  /// start), `available_s` when it becomes executable at this edge (after
  /// any transfer), and `accel_free_s` when the edge's accelerator finishes
  /// the launches already dispatched ahead of it (the execution backlog).
  /// Returns false when the predicted sojourn
  ///
  ///   max(accel_free, available)
  ///     + (buffered / b + 1) * gamma * (1 + c * (b - 1)) - arrival
  ///
  /// already exceeds slack * slo_budget. Always true when admission is off.
  [[nodiscard]] bool admit(int edge, int app, int variant, int kernel,
                           double arrival_s, double available_s,
                           double accel_free_s, std::int64_t buffered) const;

  /// Serving-path outcomes of one (app, edge) cell in the ending slot.
  struct CellStats {
    std::int64_t total = 0;   ///< requests that reached a serving verdict
    std::int64_t failed = 0;  ///< of which missed their SLO (or were shed)
  };

  /// Slot-boundary bookkeeping returned for metrics.
  struct SlotSummary {
    std::int64_t trips = 0;       ///< closed -> open transitions
    std::int64_t reopens = 0;     ///< half-open -> open
    std::int64_t probes = 0;      ///< open -> half-open
    std::int64_t recoveries = 0;  ///< half-open -> closed
    int degraded_apps = 0;        ///< apps with ladder level > 0 after update
    int max_level = 0;            ///< highest ladder level after update
  };

  /// Slot end: feeds outcomes into the breakers and stress signals into the
  /// ladder. `cells` is (apps x devices); `app_demand` is the slot's total
  /// per-app demand and `app_shed` its per-app deadline-shed count.
  SlotSummary end_slot(const util::Grid2<CellStats>& cells,
                       const std::vector<std::int64_t>& app_demand,
                       const std::vector<std::int64_t>& app_shed);

  // ---- Introspection (tests / demos). ----
  [[nodiscard]] BreakerState breaker_state(int app, int edge) const;
  [[nodiscard]] int degradation_level(int app) const;
  [[nodiscard]] const sim::SchedulerHints& hints() const noexcept {
    return hints_;
  }

 private:
  [[nodiscard]] std::size_t cell(int app, int edge) const {
    return static_cast<std::size_t>(app) * static_cast<std::size_t>(devices_) +
           static_cast<std::size_t>(edge);
  }
  [[nodiscard]] std::size_t gamma_index(int edge, int app, int variant) const {
    return (static_cast<std::size_t>(edge) * static_cast<std::size_t>(apps_) +
            static_cast<std::size_t>(app)) *
               static_cast<std::size_t>(max_variants_) +
           static_cast<std::size_t>(variant);
  }
  void rebuild_hints();

  GuardConfig config_;
  int apps_ = 0;
  int devices_ = 0;
  int max_variants_ = 0;
  std::vector<double> gamma_s_;         ///< believed gamma per (k, i, j)
  std::vector<double> slo_s_;           ///< SLO budget per app (seconds)
  std::vector<int> num_variants_;       ///< per app
  std::vector<CircuitBreaker> breakers_;  ///< per (app, edge)
  std::vector<int> level_;              ///< ladder level per app
  std::vector<int> calm_slots_;         ///< consecutive calm slots per app
  sim::SchedulerHints hints_;
};

}  // namespace birp::guard
