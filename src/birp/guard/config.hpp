// Overload-protection configuration: deadline-aware admission, per-edge
// circuit breakers, and the graceful-degradation ladder. Every feature is
// off by default; an all-default GuardConfig leaves the serving runtime
// byte-identical to a build without the guard layer.
#pragma once

#include <cstdint>

namespace birp::guard {

/// Deadline-aware admission control: shed a request at enqueue time when its
/// predicted completion (transfer arrival + queued batches ahead of it ×
/// predicted batch latency) already exceeds its SLO budget. Shedding is
/// cheap-to-reject work done early, instead of spending accelerator time on
/// a request that is doomed to miss and delaying everything behind it.
struct AdmissionConfig {
  bool enabled = false;
  /// Budget multiplier: admit while predicted sojourn <= slack * slo.
  /// > 1 is permissive (tolerates prediction error), < 1 is aggressive.
  double slack = 1.0;
  /// Believed marginal cost of a follower request inside a batch, as a
  /// fraction of the serial latency gamma: batch latency is modeled as
  /// gamma * (1 + marginal_batch_cost * (b - 1)). Mirrors the TIR curve's
  /// diminishing per-request cost without needing the full eta/beta belief.
  double marginal_batch_cost = 0.4;
};

/// Per-(app, edge) circuit breaker over the observed SLO-failure rate of the
/// serving path, evaluated once per slot on a sliding window of slots:
///
///   closed    — normal operation; window accumulates outcomes.
///   open      — failure rate tripped the threshold: redistribution and
///               failover retries route around this (app, edge) pair.
///   half-open — after open_slots of quarantine, probe traffic (local
///               arrivals keep flowing) decides: recovered -> closed,
///               still failing -> open again.
struct BreakerConfig {
  bool enabled = false;
  /// Sliding window length in slots.
  int window_slots = 8;
  /// Minimum outcomes inside the window before the breaker may trip
  /// (prevents tripping on a handful of unlucky requests).
  std::int64_t min_samples = 16;
  /// SLO-failure rate in [0, 1] at/above which a closed breaker opens and a
  /// half-open breaker re-opens.
  double trip_threshold = 0.5;
  /// Slots an open breaker waits before probing (half-open).
  int open_slots = 4;
};

/// Graceful-degradation ladder: under sustained overload for an app (its
/// shed rate above the threshold, or any of its breakers open), step the
/// app's variant cap down one rung — forbidding its most expensive variant —
/// before shedding more load. Each calm recovery window restores one rung.
struct DegradationConfig {
  bool enabled = false;
  /// Per-slot shed fraction (deadline sheds / demand) in [0, 1] at/above
  /// which the app is considered stressed.
  double stress_shed_fraction = 0.1;
  /// Consecutive calm slots required to climb back one rung.
  int recovery_slots = 3;
};

struct GuardConfig {
  AdmissionConfig admission;
  BreakerConfig breaker;
  DegradationConfig degradation;

  [[nodiscard]] bool any_enabled() const noexcept {
    return admission.enabled || breaker.enabled || degradation.enabled;
  }
};

/// Fails fast (util::check) on out-of-range values: non-positive windows,
/// thresholds outside [0, 1], negative slacks. Called by GuardController
/// and by ServeEngine's config validation.
void validate(const GuardConfig& config);

}  // namespace birp::guard
