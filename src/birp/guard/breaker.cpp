#include "birp/guard/breaker.hpp"

namespace birp::guard {

std::int64_t CircuitBreaker::window_total() const noexcept {
  std::int64_t total = 0;
  for (const auto& sample : window_) total += sample.total;
  return total;
}

std::int64_t CircuitBreaker::window_failed() const noexcept {
  std::int64_t failed = 0;
  for (const auto& sample : window_) failed += sample.failed;
  return failed;
}

CircuitBreaker::Transition CircuitBreaker::advance() {
  Transition transition;

  // Fold the slot's outcomes into the sliding window (zero-sample slots are
  // pushed too: the window is measured in slots, not in requests).
  window_.push_back({slot_total_, slot_failed_});
  slot_total_ = 0;
  slot_failed_ = 0;
  while (static_cast<int>(window_.size()) > config_.window_slots) {
    window_.pop_front();
  }

  const std::int64_t total = window_total();
  const std::int64_t failed = window_failed();
  const double rate =
      total > 0 ? static_cast<double>(failed) / static_cast<double>(total)
                : 0.0;

  switch (state_) {
    case BreakerState::kClosed:
      if (total >= config_.min_samples && rate >= config_.trip_threshold) {
        state_ = BreakerState::kOpen;
        open_for_ = 0;
        window_.clear();
        transition.tripped = true;
      }
      break;
    case BreakerState::kOpen:
      // Quarantine: outcomes observed while open (local traffic keeps
      // flowing) do not count against the probe verdict.
      window_.clear();
      if (++open_for_ >= config_.open_slots) {
        state_ = BreakerState::kHalfOpen;
        transition.probed = true;
      }
      break;
    case BreakerState::kHalfOpen:
      // Probe verdict as soon as any traffic flowed: recovered -> closed,
      // still failing -> open again. No traffic: keep probing.
      if (total > 0) {
        if (rate >= config_.trip_threshold) {
          state_ = BreakerState::kOpen;
          open_for_ = 0;
          transition.reopened = true;
        } else {
          state_ = BreakerState::kClosed;
          transition.recovered = true;
        }
        window_.clear();
      }
      break;
  }
  return transition;
}

}  // namespace birp::guard
