// Batch assembly rule: when does a partially filled batch launch?
//
// A deployed (app, variant) job wants launches of its decided kernel size b.
// The assembler seals the next launch when one of three things happens:
//   * b requests are buffered (full batch),
//   * max_wait elapsed since the oldest buffered request became ready
//     (partial batch, timeout),
//   * no further request of the job can ever arrive (stream exhausted).
// A launch can also never start before the accelerator is free, so requests
// that become ready while the accelerator is busy still join the batch.
//
// seal_batch is a pure function of the candidate availability times, which
// keeps the rule unit-testable in isolation from queues and threads.
#pragma once

#include <span>

namespace birp::serve {

struct BatchSeal {
  int count = 0;                 ///< members sealed into the launch
  double formation_end_s = 0.0;  ///< when the batch stopped forming
  double start_s = 0.0;          ///< launch start (>= accelerator-free time)
  bool timed_out = false;        ///< sealed by the max-wait timeout
};

/// Decides the next launch of one job.
///   avails          sorted availability times of the buffered candidates
///                   (at least one; at most `need` are considered)
///   need            target launch size: min(kernel, requests left to serve)
///   cursor_s        time the accelerator becomes free
///   max_wait_s      partial-batch timeout; negative = wait for full batches
///   more_may_arrive false when the job's request stream is exhausted, so
///                   waiting for the timeout would be pointless
[[nodiscard]] BatchSeal seal_batch(std::span<const double> avails, int need,
                                   double cursor_s, double max_wait_s,
                                   bool more_may_arrive);

}  // namespace birp::serve
