#include "birp/serve/queue.hpp"

#include <algorithm>

#include "birp/util/check.hpp"

namespace birp::serve {

AdmissionQueue::AdmissionQueue(int apps, std::vector<ServeItem> stream,
                               std::int64_t capacity, QueuePolicy policy,
                               AdmissionGate gate)
    : apps_(apps),
      stream_(std::move(stream)),
      upstream_(static_cast<std::size_t>(apps), 0),
      capacity_(capacity),
      policy_(policy),
      gate_(std::move(gate)),
      fifos_(static_cast<std::size_t>(apps)) {
  util::check(apps > 0, "AdmissionQueue: need at least one app");
  for (const auto& item : stream_) {
    util::check(item.app >= 0 && item.app < apps_,
                "AdmissionQueue: item app out of range");
    ++upstream_[static_cast<std::size_t>(item.app)];
  }
}

void AdmissionQueue::admit_next() {
  util::check(next_ < stream_.size(), "AdmissionQueue: stream exhausted");
  const ServeItem item = stream_[next_++];
  --upstream_[static_cast<std::size_t>(item.app)];

  // Apply departures (launch starts) that happened before this arrival.
  while (!departures_.empty() &&
         departures_.top().first <= item.available_s) {
    depth_ -= departures_.top().second;
    departures_.pop();
  }

  // Deadline-aware shedding happens before the capacity check: a request
  // predicted to miss its SLO is cheap to reject here, and must not evict a
  // still-viable buffered request to make room for itself.
  if (gate_ &&
      !gate_(item, static_cast<std::int64_t>(
                       fifos_[static_cast<std::size_t>(item.app)].size()))) {
    deadline_shed_.push_back(item);
    sample_depth();
    return;
  }

  if (capacity_ > 0 && depth_ >= capacity_) {
    if (policy_ == QueuePolicy::kEvictOldest) {
      // Evict the longest-waiting buffered request (ties: lowest app).
      int victim_app = -1;
      for (int a = 0; a < apps_; ++a) {
        const auto& fifo = fifos_[static_cast<std::size_t>(a)];
        if (fifo.empty()) continue;
        if (victim_app < 0 ||
            fifo.front().available_s <
                fifos_[static_cast<std::size_t>(victim_app)]
                    .front()
                    .available_s) {
          victim_app = a;
        }
      }
      if (victim_app >= 0) {
        auto& fifo = fifos_[static_cast<std::size_t>(victim_app)];
        dropped_.push_back(fifo.front());
        fifo.pop_front();
        --depth_;
      } else {
        // Every buffered request is already sealed into a launch; nothing
        // is evictable, so the arrival bounces after all.
        dropped_.push_back(item);
        sample_depth();
        return;
      }
    } else {
      dropped_.push_back(item);
      sample_depth();
      return;
    }
  }

  fifos_[static_cast<std::size_t>(item.app)].push_back(item);
  ++depth_;
  sample_depth();
}

void AdmissionQueue::fill(int app, std::size_t want) {
  auto& fifo = fifos_[static_cast<std::size_t>(app)];
  while (fifo.size() < want && upstream_[static_cast<std::size_t>(app)] > 0) {
    admit_next();
  }
}

void AdmissionQueue::fill_until(int app, std::size_t want, double threshold_s) {
  auto& fifo = fifos_[static_cast<std::size_t>(app)];
  while (fifo.size() < want && upstream_[static_cast<std::size_t>(app)] > 0 &&
         next_ < stream_.size() &&
         stream_[next_].available_s <= threshold_s) {
    admit_next();
  }
}

bool AdmissionQueue::exhausted(int app) const {
  return fifos_[static_cast<std::size_t>(app)].empty() &&
         upstream_[static_cast<std::size_t>(app)] == 0;
}

const std::deque<ServeItem>& AdmissionQueue::waiting(int app) const {
  return fifos_[static_cast<std::size_t>(app)];
}

std::vector<ServeItem> AdmissionQueue::take(int app, std::size_t count) {
  auto& fifo = fifos_[static_cast<std::size_t>(app)];
  util::check(count <= fifo.size(), "AdmissionQueue: take beyond waiting");
  std::vector<ServeItem> taken(fifo.begin(),
                               fifo.begin() + static_cast<std::ptrdiff_t>(count));
  fifo.erase(fifo.begin(), fifo.begin() + static_cast<std::ptrdiff_t>(count));
  return taken;
}

void AdmissionQueue::on_dispatch(double start_s, std::size_t count) {
  if (count == 0) return;
  departures_.emplace(start_s, static_cast<std::int64_t>(count));
}

void AdmissionQueue::settle_departures() {
  // End-of-slot: every registered launch has started, so all deferred
  // departures release their capacity now. Without this, a drained queue
  // kept a stale heap and a depth_ still counting requests that left long
  // ago.
  while (!departures_.empty()) {
    depth_ -= departures_.top().second;
    departures_.pop();
  }
  util::check(depth_ >= 0, "AdmissionQueue: departures exceed admissions");
}

std::vector<ServeItem> AdmissionQueue::drain_unprocessed() {
  settle_departures();
  std::vector<ServeItem> rest(stream_.begin() +
                                  static_cast<std::ptrdiff_t>(next_),
                              stream_.end());
  for (const auto& item : rest) {
    --upstream_[static_cast<std::size_t>(item.app)];
  }
  next_ = stream_.size();
  return rest;
}

std::vector<ServeItem> AdmissionQueue::drain_waiting() {
  settle_departures();
  std::vector<ServeItem> rest;
  for (auto& fifo : fifos_) {
    rest.insert(rest.end(), fifo.begin(), fifo.end());
    depth_ -= static_cast<std::int64_t>(fifo.size());
    fifo.clear();
  }
  util::check(depth_ == 0, "AdmissionQueue: depth inconsistent after drain");
  return rest;
}

}  // namespace birp::serve
