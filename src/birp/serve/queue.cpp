#include "birp/serve/queue.hpp"

#include <algorithm>

#include "birp/util/check.hpp"

namespace birp::serve {

std::size_t AdmissionQueue::WaitingView::size() const noexcept {
  return static_cast<std::size_t>(queue_->fifo(app_).size);
}

const ServeItem& AdmissionQueue::WaitingView::front() const {
  return queue_->pool_[queue_->fifo(app_).head];
}

AdmissionQueue::WaitingView::Iterator AdmissionQueue::WaitingView::begin()
    const {
  return Iterator(&queue_->pool_, queue_->fifo(app_).head);
}

AdmissionQueue::WaitingView::Iterator AdmissionQueue::WaitingView::end()
    const {
  return Iterator(&queue_->pool_, runtime::kSlabNil);
}

AdmissionQueue::AdmissionQueue(int apps, const std::vector<ServeItem>& stream,
                               std::int64_t capacity, QueuePolicy policy,
                               AdmissionGate gate) {
  reset(apps, capacity, policy, gate, stream.size());
  for (const auto& item : stream) {
    util::check(offer(item), "AdmissionQueue: staging ring full");
  }
}

void AdmissionQueue::reset(int apps, std::int64_t capacity,
                           QueuePolicy policy, AdmissionGate gate,
                           std::size_t stream_capacity,
                           double timer_origin_s,
                           double timer_resolution_s) {
  util::check(apps > 0, "AdmissionQueue: need at least one app");
  apps_ = apps;
  capacity_ = capacity;
  policy_ = policy;
  gate_ = gate;
  depth_ = 0;

  stream_.resize(std::max<std::size_t>(1, stream_capacity));
  if (static_cast<std::size_t>(apps) > upstream_capacity_) {
    produced_ = std::make_unique<std::atomic<std::int64_t>[]>(
        static_cast<std::size_t>(apps));
    upstream_capacity_ = static_cast<std::size_t>(apps);
  }
  for (int i = 0; i < apps; ++i) {
    produced_[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
  }
  if (consumed_.size() < static_cast<std::size_t>(apps)) {
    consumed_.resize(static_cast<std::size_t>(apps));
  }
  for (auto& c : consumed_) c = 0;

  if (fifos_.size() < static_cast<std::size_t>(apps)) {
    fifos_.resize(static_cast<std::size_t>(apps));
  }
  for (auto& f : fifos_) f = Fifo{};
  pool_.reclaim_all();
  departures_.reset(timer_origin_s, timer_resolution_s);

  dropped_.clear();
  deadline_shed_.clear();
  depth_stats_ = util::RunningStats{};
}

void AdmissionQueue::reserve(int apps, std::size_t items) {
  util::check(apps > 0, "AdmissionQueue: need at least one app");
  stream_.resize(std::max<std::size_t>(1, items));
  pool_.reserve(items);
  departures_.reserve(items);
  dropped_.reserve(items);
  deadline_shed_.reserve(items);
  if (static_cast<std::size_t>(apps) > upstream_capacity_) {
    produced_ = std::make_unique<std::atomic<std::int64_t>[]>(
        static_cast<std::size_t>(apps));
    upstream_capacity_ = static_cast<std::size_t>(apps);
  }
  if (consumed_.size() < static_cast<std::size_t>(apps)) {
    consumed_.resize(static_cast<std::size_t>(apps));
  }
  if (fifos_.size() < static_cast<std::size_t>(apps)) {
    fifos_.resize(static_cast<std::size_t>(apps));
  }
}

bool AdmissionQueue::offer(const ServeItem& item) {
  util::check(item.app >= 0 && item.app < apps_,
              "AdmissionQueue: item app out of range");
  if (!stream_.try_push(item)) return false;
  produced_[static_cast<std::size_t>(item.app)].fetch_add(
      1, std::memory_order_relaxed);
  return true;
}

bool AdmissionQueue::offer_all(const ServeItem* items, std::size_t count) {
  const std::size_t pushed = stream_.try_push_many(items, count);
  // Batch the upstream updates down to one atomic add per app. Streams are
  // sorted by time, so apps interleave freely — accumulate on the stack
  // (per-producer-call, so no cross-producer race) when the app count
  // allows, falling back to run-length adds for very wide clusters.
  constexpr int kStackApps = 64;
  if (apps_ <= kStackApps) {
    std::int64_t counts[kStackApps] = {};
    for (std::size_t i = 0; i < pushed; ++i) {
      const int app = items[i].app;
      util::check(app >= 0 && app < apps_,
                  "AdmissionQueue: item app out of range");
      ++counts[app];
    }
    for (int app = 0; app < apps_; ++app) {
      if (counts[app] != 0) {
        produced_[static_cast<std::size_t>(app)].fetch_add(
            counts[app], std::memory_order_relaxed);
      }
    }
  } else {
    std::size_t i = 0;
    while (i < pushed) {
      const int app = items[i].app;
      util::check(app >= 0 && app < apps_,
                  "AdmissionQueue: item app out of range");
      std::size_t j = i + 1;
      while (j < pushed && items[j].app == app) ++j;
      produced_[static_cast<std::size_t>(app)].fetch_add(
          static_cast<std::int64_t>(j - i), std::memory_order_relaxed);
      i = j;
    }
  }
  return pushed == count;
}

void AdmissionQueue::push_fifo(int app, const ServeItem& item) {
  const std::int32_t node = pool_.acquire();
  pool_[node] = item;
  auto& f = fifo(app);
  if (f.tail == runtime::kSlabNil) {
    f.head = node;
  } else {
    pool_.set_next(f.tail, node);
  }
  f.tail = node;
  ++f.size;
}

ServeItem AdmissionQueue::pop_fifo(int app) {
  auto& f = fifo(app);
  const std::int32_t node = f.head;
  const ServeItem item = pool_[node];
  f.head = pool_.next_of(node);
  if (f.head == runtime::kSlabNil) f.tail = runtime::kSlabNil;
  --f.size;
  pool_.release(node);
  return item;
}

void AdmissionQueue::admit_next() {
  ServeItem item;
  util::check(stream_.try_pop(item), "AdmissionQueue: stream exhausted");
  ++consumed_[static_cast<std::size_t>(item.app)];

  // Apply departures (launch starts) that happened before this arrival.
  depth_ -= departures_.advance(item.available_s);

  // Deadline-aware shedding happens before the capacity check: a request
  // predicted to miss its SLO is cheap to reject here, and must not evict a
  // still-viable buffered request to make room for itself.
  if (gate_ && !gate_(item, fifo(item.app).size)) {
    deadline_shed_.push_back(item);
    sample_depth();
    return;
  }

  if (capacity_ > 0 && depth_ >= capacity_) {
    if (policy_ == QueuePolicy::kEvictOldest) {
      // Evict the longest-waiting buffered request (ties: lowest app).
      int victim_app = -1;
      double victim_avail = 0.0;
      for (int a = 0; a < apps_; ++a) {
        const auto& f = fifo(a);
        if (f.head == runtime::kSlabNil) continue;
        const double avail = pool_[f.head].available_s;
        if (victim_app < 0 || avail < victim_avail) {
          victim_app = a;
          victim_avail = avail;
        }
      }
      if (victim_app >= 0) {
        dropped_.push_back(pop_fifo(victim_app));
        --depth_;
      } else {
        // Every buffered request is already sealed into a launch; nothing
        // is evictable, so the arrival bounces after all.
        dropped_.push_back(item);
        sample_depth();
        return;
      }
    } else {
      dropped_.push_back(item);
      sample_depth();
      return;
    }
  }

  push_fifo(item.app, item);
  ++depth_;
  sample_depth();
}

void AdmissionQueue::fill(int app, std::size_t want) {
  const auto& f = fifo(app);
  while (static_cast<std::size_t>(f.size) < want && upstream(app) > 0) {
    admit_next();
  }
}

void AdmissionQueue::fill_until(int app, std::size_t want,
                                double threshold_s) {
  const auto& f = fifo(app);
  while (static_cast<std::size_t>(f.size) < want && upstream(app) > 0) {
    const ServeItem* next = stream_.front();
    if (next == nullptr || next->available_s > threshold_s) break;
    admit_next();
  }
}

bool AdmissionQueue::exhausted(int app) const {
  return fifo(app).size == 0 && upstream(app) == 0;
}

void AdmissionQueue::take_into(int app, std::size_t count,
                               std::vector<ServeItem>& out) {
  out.clear();
  auto& f = fifo(app);
  util::check(count <= static_cast<std::size_t>(f.size),
              "AdmissionQueue: take beyond waiting");
  for (std::size_t r = 0; r < count; ++r) {
    out.push_back(pop_fifo(app));
  }
}

std::vector<ServeItem> AdmissionQueue::take(int app, std::size_t count) {
  std::vector<ServeItem> taken;
  taken.reserve(count);
  take_into(app, count, taken);
  return taken;
}

void AdmissionQueue::on_dispatch(double start_s, std::size_t count) {
  if (count == 0) return;
  departures_.schedule(start_s, static_cast<std::int64_t>(count));
}

void AdmissionQueue::settle_departures() {
  // End-of-slot: every registered launch has started, so all deferred
  // departures release their capacity now. Without this, a drained queue
  // kept stale events and a depth_ still counting requests that left long
  // ago.
  depth_ -= departures_.settle_all();
  util::check(depth_ >= 0, "AdmissionQueue: departures exceed admissions");
}

void AdmissionQueue::drain_unprocessed_into(std::vector<ServeItem>& out) {
  settle_departures();
  out.clear();
  ServeItem item;
  while (stream_.try_pop(item)) {
    ++consumed_[static_cast<std::size_t>(item.app)];
    out.push_back(item);
  }
}

std::vector<ServeItem> AdmissionQueue::drain_unprocessed() {
  std::vector<ServeItem> rest;
  drain_unprocessed_into(rest);
  return rest;
}

void AdmissionQueue::drain_waiting_into(std::vector<ServeItem>& out) {
  settle_departures();
  out.clear();
  for (int a = 0; a < apps_; ++a) {
    auto& f = fifo(a);
    depth_ -= f.size;
    while (f.size > 0) out.push_back(pop_fifo(a));
  }
  util::check(depth_ == 0, "AdmissionQueue: depth inconsistent after drain");
}

std::vector<ServeItem> AdmissionQueue::drain_waiting() {
  std::vector<ServeItem> rest;
  drain_waiting_into(rest);
  return rest;
}

}  // namespace birp::serve
