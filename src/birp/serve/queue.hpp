// Per-edge admission queue for the serving runtime — lock-free hot path.
//
// One edge's requests (local arrivals plus redistributed imports) form a
// single chronological stream; the queue admits them in availability order
// against a shared capacity on buffered-not-yet-dispatched requests,
// applying the configured backpressure policy when full. Admitted requests
// wait in per-application FIFOs until the batch assembler takes them;
// dispatch events (launch starts) free their capacity at the right point
// in time, so an admission decision at time T sees exactly the requests
// buffered at T.
//
// The PR-10 rewrite keeps that contract and replaces every internal
// container with a steady-state allocation-free, lock-free equivalent:
//
//   * the arrival stream is a bounded MPSC ring (runtime/mpsc_ring.hpp) —
//     producers stage with offer() from any thread, the owning edge worker
//     consumes without ever taking a lock;
//   * waiting requests live in intrusive per-app FIFOs over a slab
//     recycler (runtime/slab.hpp) — no per-request node allocation once
//     the slab's high-water mark is reached;
//   * deferred departures go through a hierarchical timer wheel
//     (runtime/timer_wheel.hpp) instead of a binary heap — O(1) schedule,
//     bucket-granular expiry with exact-time comparisons only at the
//     boundary bucket;
//   * the admission gate is a non-owning context+function-pointer pair,
//     not a std::function — no type-erasure allocation per slot.
//
// reset() retains every capacity, so an engine reusing one queue per edge
// across slots performs zero heap allocations per request in steady state
// (asserted in serve_test with the BIRP_COUNT_ALLOCS hook).
//
// Determinism: the admission decision sequence is byte-identical to the
// seed implementation (kept as serve/legacy_queue.hpp) for any staging
// order equal to the seed's stream order — pinned by serve_test's
// byte-identity suite.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "birp/runtime/mpsc_ring.hpp"
#include "birp/runtime/slab.hpp"
#include "birp/runtime/timer_wheel.hpp"
#include "birp/serve/request.hpp"
#include "birp/util/stats.hpp"

namespace birp::serve {

/// What to do with an arrival when the queue is at capacity.
enum class QueuePolicy {
  kRejectNewest,  ///< bounce the arriving request
  kEvictOldest,   ///< evict the longest-waiting buffered request instead
};

/// Deadline-aware admission verdict, consulted for each arrival before the
/// capacity check. A non-owning (context, function-pointer) pair: the
/// engine keeps the context alive for the queue's lifetime. Returning
/// false sheds the request (it lands in deadline_shed(), not dropped()).
/// Default-constructed gates admit everything.
class AdmissionGate {
 public:
  using Fn = bool (*)(const void* ctx, const ServeItem& item,
                      std::int64_t buffered_ahead);

  AdmissionGate() = default;
  AdmissionGate(const void* ctx, Fn fn) : ctx_(ctx), fn_(fn) {}

  explicit operator bool() const noexcept { return fn_ != nullptr; }
  bool operator()(const ServeItem& item, std::int64_t buffered_ahead) const {
    return fn_(ctx_, item, buffered_ahead);
  }

 private:
  const void* ctx_ = nullptr;
  Fn fn_ = nullptr;
};

class AdmissionQueue {
 public:
  /// An empty queue; reset() before use (the engine's reuse path).
  AdmissionQueue() = default;

  /// Convenience form (tests, one-shot callers): resets and stages the
  /// whole stream. `stream` must be sorted by (available_s, app, origin,
  /// seq). `capacity` <= 0 means unbounded.
  AdmissionQueue(int apps, const std::vector<ServeItem>& stream,
                 std::int64_t capacity, QueuePolicy policy,
                 AdmissionGate gate = {});

  /// Re-arms the queue for a new slot, retaining all storage so steady-
  /// state reuse allocates nothing. `stream_capacity` sizes the staging
  /// ring (at least the number of offers this slot will make);
  /// `timer_origin_s`/`timer_resolution_s` anchor the departure wheel
  /// (resolution affects performance only, never results).
  void reset(int apps, std::int64_t capacity, QueuePolicy policy,
             AdmissionGate gate, std::size_t stream_capacity,
             double timer_origin_s = 0.0, double timer_resolution_s = 1e-2);

  /// Stages one arrival. Safe from multiple producer threads concurrently
  /// (the MPSC contract); consumption must not start until producers
  /// quiesce. Items must collectively arrive in (available_s, app, origin,
  /// seq) order for determinism — the engine stages from one thread in
  /// sorted order. Returns false when the ring is full (size the ring via
  /// reset()).
  bool offer(const ServeItem& item);

  /// Bulk stage: offers `count` items with one ring claim (one CAS) and
  /// one upstream-counter update per app instead of per item — the
  /// engine's staging path for a whole slot. Same concurrency contract as
  /// offer(): safe from multiple producer threads, each producer's batch
  /// keeps its internal order. Returns true when all `count` items were
  /// staged; false when the ring ran out of room (the staged prefix
  /// stays staged and is counted upstream — size the ring via reset()).
  bool offer_all(const ServeItem* items, std::size_t count);

  /// Pre-carves every internal pool, the per-app tables, and the staging
  /// ring for `apps` apps and `items` offers, so a subsequent
  /// reset()+offer()+fill() cycle up to that size never allocates. Call
  /// while quiescent (construction-time warmup): the ring is
  /// re-initialized. No-op once capacity suffices.
  void reserve(int apps, std::size_t items);

  /// Processes arrivals chronologically until `app`'s FIFO holds `want`
  /// admitted requests or the stream runs out.
  void fill(int app, std::size_t want);

  /// Like fill(), but stops before the first arrival with
  /// available_s > threshold_s (that arrival stays unprocessed).
  void fill_until(int app, std::size_t want, double threshold_s);

  /// True when no request of `app` is waiting and none remains upstream.
  [[nodiscard]] bool exhausted(int app) const;

  /// Requests of `app` still unprocessed in the stream (not yet admitted
  /// or dropped): items staged by producers minus items the consumer has
  /// retired. Exact on the consumer thread once producers have quiesced
  /// (the consumer-side count is a plain integer the consumer owns, so
  /// retiring a request costs one increment, not an atomic RMW).
  [[nodiscard]] std::int64_t upstream(int app) const {
    return produced_[static_cast<std::size_t>(app)].load(
               std::memory_order_relaxed) -
           consumed_[static_cast<std::size_t>(app)];
  }

  /// Live, non-owning view of `app`'s waiting FIFO (oldest first). Reads
  /// the queue's current state on every call, so a view taken before a
  /// fill()/take() observes the mutation — same semantics as the deque
  /// reference the seed queue returned.
  class WaitingView {
   public:
    class Iterator {
     public:
      Iterator(const runtime::SlabPool<ServeItem>* pool, std::int32_t idx)
          : pool_(pool), idx_(idx) {}
      const ServeItem& operator*() const { return (*pool_)[idx_]; }
      Iterator& operator++() {
        idx_ = pool_->next_of(idx_);
        return *this;
      }
      bool operator==(const Iterator& other) const noexcept {
        return idx_ == other.idx_;
      }

     private:
      const runtime::SlabPool<ServeItem>* pool_;
      std::int32_t idx_;
    };

    [[nodiscard]] std::size_t size() const noexcept;
    [[nodiscard]] bool empty() const noexcept { return size() == 0; }
    [[nodiscard]] const ServeItem& front() const;
    [[nodiscard]] Iterator begin() const;
    [[nodiscard]] Iterator end() const;

   private:
    friend class AdmissionQueue;
    WaitingView(const AdmissionQueue* queue, int app)
        : queue_(queue), app_(app) {}
    const AdmissionQueue* queue_;
    int app_;
  };

  /// Admitted requests of `app` waiting for batch assembly, oldest first.
  [[nodiscard]] WaitingView waiting(int app) const {
    return WaitingView(this, app);
  }

  /// Removes the first `count` waiting requests of `app` (sealed into a
  /// batch) into `out` (cleared first; capacity retained across calls).
  /// Capacity is not released here — call on_dispatch with the launch
  /// start so the departure lands at the right time.
  void take_into(int app, std::size_t count, std::vector<ServeItem>& out);

  /// Allocating convenience wrapper over take_into (tests).
  [[nodiscard]] std::vector<ServeItem> take(int app, std::size_t count);

  /// Registers that `count` buffered requests leave the queue at `start_s`.
  void on_dispatch(double start_s, std::size_t count);

  /// Requests dropped by backpressure so far, in drop order.
  [[nodiscard]] const std::vector<ServeItem>& dropped() const noexcept {
    return dropped_;
  }

  /// Requests the admission gate shed at enqueue time, in shed order.
  [[nodiscard]] const std::vector<ServeItem>& deadline_shed() const noexcept {
    return deadline_shed_;
  }

  /// Depth samples taken after every admission decision. Every decision
  /// path (admit, bounce, evict-then-admit) contributes exactly one
  /// sample: the buffered count after the decision.
  [[nodiscard]] const util::RunningStats& depth_stats() const noexcept {
    return depth_stats_;
  }

  /// Requests currently occupying buffer capacity: admitted-and-waiting
  /// plus taken-but-not-yet-departed (their launch has not started).
  [[nodiscard]] std::int64_t depth() const noexcept { return depth_; }

  /// Requests never processed (stream leftovers); drains the stream.
  /// Terminal: settles all pending departures first, so a fully drained
  /// queue reports depth() == waiting count (0 after drain_waiting too).
  void drain_unprocessed_into(std::vector<ServeItem>& out);
  [[nodiscard]] std::vector<ServeItem> drain_unprocessed();

  /// Admitted requests still waiting across all apps. Terminal like
  /// drain_unprocessed(): settles pending departures before removing, so
  /// depth() drops to exactly the in-flight count released by those
  /// departures — never stale.
  void drain_waiting_into(std::vector<ServeItem>& out);
  [[nodiscard]] std::vector<ServeItem> drain_waiting();

 private:
  /// One app's intrusive FIFO over the shared slab.
  struct Fifo {
    std::int32_t head = runtime::kSlabNil;
    std::int32_t tail = runtime::kSlabNil;
    std::int64_t size = 0;
  };

  void admit_next();
  /// Applies every pending departure regardless of time (used by the
  /// drains: end-of-slot means all registered launches have started).
  void settle_departures();
  /// One depth sample per admission decision (shared by all paths).
  void sample_depth() { depth_stats_.add(static_cast<double>(depth_)); }

  [[nodiscard]] Fifo& fifo(int app) {
    return fifos_[static_cast<std::size_t>(app)];
  }
  [[nodiscard]] const Fifo& fifo(int app) const {
    return fifos_[static_cast<std::size_t>(app)];
  }
  void push_fifo(int app, const ServeItem& item);
  ServeItem pop_fifo(int app);

  int apps_ = 0;
  runtime::MpscRing<ServeItem> stream_;  ///< staged arrivals, FIFO
  /// Per-app count staged into the stream. Atomic so offer() is MPSC-safe;
  /// a raw array (not a vector) because atomics are neither copyable nor
  /// movable; grown only when `apps` exceeds the high-water capacity.
  std::unique_ptr<std::atomic<std::int64_t>[]> produced_;
  std::size_t upstream_capacity_ = 0;
  /// Per-app count the consumer retired from the stream; consumer-owned
  /// plain integers (upstream(app) = produced - consumed).
  std::vector<std::int64_t> consumed_;
  std::int64_t capacity_ = 0;
  QueuePolicy policy_ = QueuePolicy::kRejectNewest;
  AdmissionGate gate_;
  std::int64_t depth_ = 0;
  std::vector<Fifo> fifos_;
  runtime::SlabPool<ServeItem> pool_;  ///< backing store for all FIFOs
  runtime::TimerWheel departures_;     ///< deferred capacity releases
  std::vector<ServeItem> dropped_;
  std::vector<ServeItem> deadline_shed_;
  util::RunningStats depth_stats_;
};

}  // namespace birp::serve
