// Per-edge admission queue for the serving runtime.
//
// One edge's requests (local arrivals plus redistributed imports) form a
// single chronological stream; the queue admits them in availability order
// against a shared capacity on buffered-not-yet-dispatched requests,
// applying the configured backpressure policy when full. Admitted requests
// wait in per-application FIFOs until the batch assembler takes them;
// dispatch events (launch starts) free their capacity at the right point in
// time via a deferred-departure heap, so an admission decision at time T
// sees exactly the requests buffered at T.
//
// Everything here is sequential and deterministic: the engine runs one
// AdmissionQueue per (slot, edge) on one worker thread.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "birp/serve/request.hpp"
#include "birp/util/stats.hpp"

namespace birp::serve {

/// What to do with an arrival when the queue is at capacity.
enum class QueuePolicy {
  kRejectNewest,  ///< bounce the arriving request
  kEvictOldest,   ///< evict the longest-waiting buffered request instead
};

/// Deadline-aware admission verdict, consulted for each arrival before the
/// capacity check. Receives the arrival and the count of same-app requests
/// already buffered ahead of it; returning false sheds the request (it lands
/// in deadline_shed(), not in dropped()). A null gate admits everything.
using AdmissionGate =
    std::function<bool(const ServeItem& item, std::int64_t buffered_ahead)>;

class AdmissionQueue {
 public:
  /// `stream` must be sorted by (available_s, app, origin, seq).
  /// `capacity` <= 0 means unbounded.
  AdmissionQueue(int apps, std::vector<ServeItem> stream, std::int64_t capacity,
                 QueuePolicy policy, AdmissionGate gate = nullptr);

  /// Processes arrivals chronologically until `app`'s FIFO holds `want`
  /// admitted requests or the stream runs out.
  void fill(int app, std::size_t want);

  /// Like fill(), but stops before the first arrival with
  /// available_s > threshold_s (that arrival stays unprocessed).
  void fill_until(int app, std::size_t want, double threshold_s);

  /// True when no request of `app` is waiting and none remains upstream.
  [[nodiscard]] bool exhausted(int app) const;

  /// Requests of `app` still unprocessed in the stream (not yet admitted
  /// or dropped).
  [[nodiscard]] std::int64_t upstream(int app) const {
    return upstream_[static_cast<std::size_t>(app)];
  }

  /// Admitted requests of `app` waiting for batch assembly, oldest first.
  [[nodiscard]] const std::deque<ServeItem>& waiting(int app) const;

  /// Removes the first `count` waiting requests of `app` (sealed into a
  /// batch). Capacity is not released here — call on_dispatch with the
  /// launch start so the departure lands at the right time.
  [[nodiscard]] std::vector<ServeItem> take(int app, std::size_t count);

  /// Registers that `count` buffered requests leave the queue at `start_s`.
  void on_dispatch(double start_s, std::size_t count);

  /// Requests dropped by backpressure so far, in drop order.
  [[nodiscard]] const std::vector<ServeItem>& dropped() const noexcept {
    return dropped_;
  }

  /// Requests the admission gate shed at enqueue time, in shed order.
  [[nodiscard]] const std::vector<ServeItem>& deadline_shed() const noexcept {
    return deadline_shed_;
  }

  /// Depth samples taken after every admission decision. Every decision path
  /// (admit, bounce, evict-then-admit) contributes exactly one sample: the
  /// buffered count after the decision.
  [[nodiscard]] const util::RunningStats& depth_stats() const noexcept {
    return depth_stats_;
  }

  /// Requests currently occupying buffer capacity: admitted-and-waiting plus
  /// taken-but-not-yet-departed (their launch has not started).
  [[nodiscard]] std::int64_t depth() const noexcept { return depth_; }

  /// Requests never processed (stream leftovers); drains the stream.
  /// Terminal: settles all pending departures first, so a fully drained
  /// queue reports depth() == waiting count (0 after drain_waiting too).
  [[nodiscard]] std::vector<ServeItem> drain_unprocessed();

  /// Admitted requests still waiting across all apps. Terminal like
  /// drain_unprocessed(): settles pending departures before removing, so
  /// depth() drops to exactly the in-flight count released by those
  /// departures — never stale.
  [[nodiscard]] std::vector<ServeItem> drain_waiting();

 private:
  void admit_next();
  /// Applies every pending departure regardless of time (used by the drains:
  /// end-of-slot means all registered launches have started).
  void settle_departures();
  /// One depth sample per admission decision (shared by all decision paths).
  void sample_depth() { depth_stats_.add(static_cast<double>(depth_)); }

  int apps_;
  std::vector<ServeItem> stream_;
  std::size_t next_ = 0;  ///< first unprocessed stream index
  std::vector<std::int64_t> upstream_;  ///< per-app count still in stream
  std::int64_t capacity_;
  QueuePolicy policy_;
  AdmissionGate gate_;
  std::int64_t depth_ = 0;
  std::vector<std::deque<ServeItem>> fifos_;
  /// Deferred departures: (launch start, members), earliest first.
  std::priority_queue<std::pair<double, std::int64_t>,
                      std::vector<std::pair<double, std::int64_t>>,
                      std::greater<>>
      departures_;
  std::vector<ServeItem> dropped_;
  std::vector<ServeItem> deadline_shed_;
  util::RunningStats depth_stats_;
};

}  // namespace birp::serve
