// The pre-ring admission queue, kept as the A/B reference implementation.
//
// This is the seed AdmissionQueue verbatim — std::deque FIFOs, a
// std::priority_queue departure heap, a std::function admission gate —
// with one addition: a mutex serializing every public operation. The seed
// engine relied on external serialization (one queue per edge worker); any
// shared thread-safe variant of it would have paid this lock on every
// admission, which is exactly the cost the lock-free rewrite removes.
// bench_serve's baseline arm drives this class to measure that cost, and
// the byte-identity suite in serve_test asserts the rewritten queue
// reproduces its admit/shed/defer streams decision for decision.
//
// Do not extend this class; it exists to stay still.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <vector>

#include "birp/serve/queue.hpp"  // QueuePolicy, shared with the rewrite
#include "birp/serve/request.hpp"
#include "birp/util/stats.hpp"

namespace birp::serve {

/// The seed's gate type: an owning type-erased callable (heap-allocating
/// for capturing lambdas — part of the measured legacy cost).
using LegacyAdmissionGate =
    std::function<bool(const ServeItem& item, std::int64_t buffered_ahead)>;

class LegacyAdmissionQueue {
 public:
  /// `stream` must be sorted by (available_s, app, origin, seq).
  /// `capacity` <= 0 means unbounded.
  LegacyAdmissionQueue(int apps, std::vector<ServeItem> stream,
                       std::int64_t capacity, QueuePolicy policy,
                       LegacyAdmissionGate gate = nullptr);

  void fill(int app, std::size_t want);
  void fill_until(int app, std::size_t want, double threshold_s);
  [[nodiscard]] bool exhausted(int app) const;
  [[nodiscard]] std::int64_t upstream(int app) const;
  /// Snapshot of `app`'s waiting FIFO (copy: the deque is lock-guarded).
  [[nodiscard]] std::vector<ServeItem> waiting_snapshot(int app) const;
  [[nodiscard]] std::size_t waiting_size(int app) const;
  [[nodiscard]] std::vector<ServeItem> take(int app, std::size_t count);
  void on_dispatch(double start_s, std::size_t count);
  [[nodiscard]] std::vector<ServeItem> dropped_snapshot() const;
  [[nodiscard]] std::vector<ServeItem> deadline_shed_snapshot() const;
  [[nodiscard]] util::RunningStats depth_stats_snapshot() const;
  [[nodiscard]] std::int64_t depth() const;
  [[nodiscard]] std::vector<ServeItem> drain_unprocessed();
  [[nodiscard]] std::vector<ServeItem> drain_waiting();

 private:
  void admit_next();
  void settle_departures();
  void sample_depth() { depth_stats_.add(static_cast<double>(depth_)); }

  mutable std::mutex mutex_;
  int apps_;
  std::vector<ServeItem> stream_;
  std::size_t next_ = 0;
  std::vector<std::int64_t> upstream_;
  std::int64_t capacity_;
  QueuePolicy policy_;
  LegacyAdmissionGate gate_;
  std::int64_t depth_ = 0;
  std::vector<std::deque<ServeItem>> fifos_;
  std::priority_queue<std::pair<double, std::int64_t>,
                      std::vector<std::pair<double, std::int64_t>>,
                      std::greater<>>
      departures_;
  std::vector<ServeItem> dropped_;
  std::vector<ServeItem> deadline_shed_;
  util::RunningStats depth_stats_;
};

}  // namespace birp::serve
