// Request-level asynchronous serving engine.
//
// Where sim::Simulator scores a slot decision on merged per-slot batches,
// the ServeEngine replays the trace as timestamped request arrivals inside
// each slot and follows every request through admission, redistribution,
// batch assembly, dispatch, and execution:
//
//   1. expand the slot's trace cells into arrivals (workload::slot_arrivals)
//      and derive SlotState.demand from them;
//   2. ask the scheduler for a SlotDecision and validate/repair it exactly
//      like the simulator — schedulers are reused unchanged;
//   3. split each cell's arrivals into serve-local / redistribute / shed
//      streams according to the decision; redistributed requests reach
//      their serving edge after the wireless transfer schedule;
//   4. per edge, admit requests chronologically into a bounded admission
//      queue (drop/backpressure policy), assemble batches of the decided
//      kernel size with a max-wait timeout for partial batches, and execute
//      them on the edge's accelerator using ground-truth TIR plus noise;
//   5. record per-request queueing delay, batch-formation wait, execution
//      latency, and SLO hit/miss, and feed busy-time + TIR observations
//      back to the scheduler.
//
// Edges execute concurrently on runtime::ThreadPool. Determinism matches
// the simulator's standard: all randomness comes from per-(slot, edge)
// forked RNG streams and per-edge computation is sequential, so results
// are bit-identical at any thread count.
//
// Hot-path layout (PR 10): every piece of per-edge working state — the
// lock-free admission queue, batch scratch buffers, gate tables, and the
// outcome accumulators — lives in a cache-line-aligned EdgeShard owned by
// exactly one worker per slot. Shards persist across slots with grow-only
// capacity, so steady-state serving performs zero heap allocations per
// request on the admission→seal→launch path (asserted in serve_test via
// the BIRP_COUNT_ALLOCS hook, tracked in BENCH_serve.json); cross-edge
// workers never share a cache line or a lock.
//
// SLO semantics differ deliberately from the simulator: the simulator
// checks completion within the slot (slot-relative), the engine checks each
// request's end-to-end sojourn (arrival to completion) against
// slo_fraction * tau — the quantity per-request SLOs are written against.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "birp/device/cluster.hpp"
#include "birp/fault/failover.hpp"
#include "birp/fault/fault_plan.hpp"
#include "birp/guard/controller.hpp"
#include "birp/metrics/run_metrics.hpp"
#include "birp/predictor/latency_predictor.hpp"
#include "birp/runtime/thread_pool.hpp"
#include "birp/serve/adaptive.hpp"
#include "birp/serve/queue.hpp"
#include "birp/serve/request.hpp"
#include "birp/sim/decision.hpp"
#include "birp/sim/scheduler.hpp"
#include "birp/sim/validate.hpp"
#include "birp/util/stats.hpp"
#include "birp/workload/arrivals.hpp"
#include "birp/workload/trace.hpp"

namespace birp::serve {

struct ServeConfig {
  /// Lognormal sigma applied to every batch execution time.
  double noise_sigma = 0.04;
  /// Seeds both the arrival-timestamp expansion and the execution noise.
  std::uint64_t seed = 0x51beef;
  /// Worker threads for per-edge execution; 0 = hardware concurrency.
  int threads = 0;
  /// When false, per-batch TIR observations are not fed back.
  bool report_observations = true;
  /// Admission-queue capacity per edge (buffered requests); 0 = unbounded.
  /// Negative is rejected by config validation.
  std::int64_t queue_capacity = 0;
  QueuePolicy queue_policy = QueuePolicy::kRejectNewest;
  /// Partial-batch timeout as a fraction of tau; negative = wait for full
  /// batches (launch early only when the request stream is exhausted).
  double max_batch_wait_fraction = 0.05;
  /// Retain per-request records in SlotServeResult (tests / deep dives).
  bool keep_records = false;
  /// Fault injection: edge outages orphan the requests routed to them,
  /// bandwidth faults stretch transfer schedules, stragglers stretch
  /// launches. Empty plan = the fault-free engine, bit for bit.
  fault::FaultPlan fault_plan;
  /// Orphan handling: terminal drops (disabled, default) or re-admission as
  /// fresh arrivals at surviving edges after seeded exponential backoff. A
  /// re-admitted request's sojourn clock restarts at re-admission (its
  /// deadline is renewed, like the simulator's carryover mode).
  fault::FailoverConfig failover;
  /// Overload protection (birp/guard): deadline-aware admission, per-edge
  /// circuit breakers, and the graceful-degradation ladder. All-default =
  /// disabled, and the engine is byte-identical to a guard-free build.
  guard::GuardConfig guard;
  /// Believed batch latencies for the admission formula (the nn-Meter
  /// role); null = the cluster's exact gamma table. Shared with the
  /// adaptive batcher's latency curves.
  std::shared_ptr<const predictor::LatencyPredictor> guard_predictor;
  /// SLO-aware adaptive batching (serve/adaptive.hpp): the MILP batch size
  /// becomes a per-slot prior the runtime seals early / grows around. All-
  /// default = disabled, and batch assembly is byte-identical to the
  /// fill-to-target rule. When enabled, every launch reports a TIR
  /// observation (not just the first per job), so the tuner sees the
  /// realized batch-size distribution the runtime actually ran.
  AdaptiveBatcherConfig adaptive;
};

/// Outcome of one served slot.
struct SlotServeResult {
  sim::SlotDecision decision;  ///< post-repair decision that executed
  sim::ValidationReport repairs;
  sim::SlotFeedback feedback;
  double slot_loss = 0.0;
  std::int64_t served = 0;
  std::int64_t planned_drops = 0;  ///< shed by the decision (worst-model loss)
  std::int64_t queue_drops = 0;    ///< backpressure drops (admission queue)
  std::int64_t deadline_sheds = 0; ///< shed by deadline-aware admission
  std::int64_t orphaned = 0;       ///< terminal losses to edge failures
  std::int64_t retried = 0;        ///< orphans re-admitted after backoff
  std::int64_t slo_failures = 0;
  /// Heap allocations performed inside the per-edge hot path this slot
  /// (thread-local operator-new counts; 0 unless a BIRP_COUNT_ALLOCS hook
  /// is linked). Nonzero only while shards grow toward their high-water
  /// capacity — steady state is 0.
  std::int64_t hot_allocs = 0;
  /// Launches sealed this slot, bucketed by SealReason.
  std::array<std::int64_t, kNumSealReasons> seals{};
  /// All request records in deterministic order; only when keep_records.
  std::vector<RequestRecord> records;
};

class ServeEngine {
 public:
  ServeEngine(const device::ClusterSpec& cluster, const workload::Trace& trace,
              ServeConfig config = {});

  /// Runs the scheduler over the whole horizon (or `max_slots` if positive
  /// and smaller) and returns aggregated request-level metrics.
  metrics::RunMetrics run(sim::Scheduler& scheduler, int max_slots = -1);

  /// Serves a single slot, advancing internal state.
  SlotServeResult step(sim::Scheduler& scheduler,
                       metrics::RunMetrics* metrics = nullptr);

  [[nodiscard]] int current_slot() const noexcept { return slot_; }
  [[nodiscard]] const device::ClusterSpec& cluster() const noexcept {
    return cluster_;
  }
  /// The guard controller, when any guard feature is enabled (tests/demos).
  [[nodiscard]] const guard::GuardController* guard() const noexcept {
    return guard_.has_value() ? &guard_.value() : nullptr;
  }

 private:
  /// The serve-here stream of one edge plus what the decision shed there.
  struct EdgeInput {
    std::vector<ServeItem> stream;        ///< sorted by availability
    std::vector<ServeItem> planned_drops; ///< rejected at arrival
  };

  /// Everything one edge produces in a slot; merged single-threaded.
  struct EdgeOutcome {
    std::vector<RequestRecord> records;  ///< served, queue drops, stranded
    std::vector<sim::TirObservation> observations;
    std::array<std::int64_t, kNumSealReasons> seals{};  ///< per SealReason
    util::RunningStats depth_stats;
    double busy_s = 0.0;
    double loss = 0.0;  ///< served-request loss only
    /// operator-new calls on this edge's worker during execute_edge (0
    /// without the BIRP_COUNT_ALLOCS hook; 0 in steady state with it).
    std::int64_t hot_allocs = 0;
  };

  /// One executable job on an edge: a (app, variant) deployment with its
  /// request count and kernel batch size (mirrors the simulator's Job).
  struct Job {
    int app = 0;
    int variant = 0;
    std::int64_t served = 0;
    int kernel = 1;
  };

  struct EdgeShard;

  /// Context behind the non-owning admission gate: lives in the shard so
  /// its address is stable for the queue's lifetime.
  struct GateContext {
    const ServeEngine* engine = nullptr;
    const EdgeShard* shard = nullptr;
    int edge = 0;
  };

  /// All per-edge working state, owned by exactly one worker per slot.
  /// Cache-line aligned so neighboring edges' hot state never false-shares;
  /// every container is grow-only, making steady-state slots allocation-
  /// free on the admission→seal→launch path.
  struct alignas(64) EdgeShard {
    AdmissionQueue queue;
    EdgeOutcome outcome;
    std::vector<Job> jobs;
    std::vector<ServeItem> members;     ///< take_into scratch per launch
    std::vector<ServeItem> candidates;  ///< batcher.plan input scratch
    std::vector<double> avail_scratch;  ///< batcher.plan working set
    std::vector<int> gate_variant;      ///< per-app gate deployment table
    std::vector<int> gate_kernel;
    GateContext gate_ctx;
    /// Accelerator-free time on this edge: launches dispatched so far end
    /// here, and the next one cannot start earlier. Read by the admission
    /// gate (execution backlog folds into its sojourn prediction).
    double cursor_s = 0.0;
  };

  /// AdmissionGate trampoline into GuardController::admit.
  static bool admission_gate_thunk(const void* ctx, const ServeItem& item,
                                   std::int64_t buffered_ahead);

  /// Fills inputs_ (reused across slots). `bandwidth_factors` scales each
  /// edge's wireless bandwidth for the transfer schedule (empty = no
  /// degradation).
  void build_edge_inputs(const std::vector<workload::Arrival>& arrivals,
                         const sim::SlotDecision& decision,
                         const std::vector<double>& bandwidth_factors);

  /// Serves one edge's slot into shards_[k].outcome (clearing it first).
  void execute_edge(int k, const sim::SlotDecision& decision, int slot,
                    const std::vector<ServeItem>& stream,
                    double straggler_factor);

  const device::ClusterSpec& cluster_;
  const workload::Trace& trace_;
  ServeConfig config_;
  /// Batch-assembly rule: delegates to seal_batch when adaptation is
  /// disabled (the default), so that path stays byte-identical.
  AdaptiveBatcher batcher_;
  runtime::ThreadPool pool_;
  int slot_ = 0;
  std::optional<sim::SlotDecision> previous_;
  /// Re-admission of requests orphaned by edge failures.
  fault::FailoverPolicy failover_;
  /// Overload protection; engaged only when a guard feature is enabled, so
  /// the default path stays byte-identical to the guard-free engine.
  std::optional<guard::GuardController> guard_;

  /// Persistent per-edge hot-path state (one per device, reused per slot).
  std::vector<EdgeShard> shards_;
  /// Per-slot scratch for build_edge_inputs / step, reused across slots.
  std::vector<EdgeInput> inputs_;
  std::vector<std::vector<ServeItem>> cells_scratch_;
  std::vector<std::size_t> cursor_scratch_;
  std::vector<std::vector<ServeItem>> imports_scratch_;
  std::vector<std::vector<ServeItem>> orphan_scratch_;
};

}  // namespace birp::serve
