// Request-level records for the serving runtime.
//
// The slot simulator (birp/sim) only tracks aggregate completion times; the
// serving engine (birp/serve) follows every request from its timestamped
// arrival through admission, batch formation, dispatch, and execution, and
// records the full wait breakdown SLOs are written against.
#pragma once

#include <cstdint>

namespace birp::serve {

/// One request routed to an edge for service. All times are offsets from
/// the slot start, in seconds.
struct ServeItem {
  int app = 0;
  int origin = 0;         ///< edge whose region the request arrived in
  std::int64_t seq = 0;   ///< arrival index in the origin (slot, app) stream
  double arrival_s = 0.0; ///< arrival at the origin edge
  /// Ready at the serving edge: equals arrival_s for locally served
  /// requests; includes the wireless transfer delay for redistributed ones.
  double available_s = 0.0;
};

enum class Outcome {
  kServed,        ///< executed in a batch
  kPlannedDrop,   ///< the slot decision shed this request (no feasible serve)
  kQueueDrop,     ///< rejected/evicted by admission-queue backpressure
  kOrphaned,      ///< terminally lost to an edge failure (retry budget spent)
  kDeadlineShed,  ///< shed at enqueue: predicted wait already blew the SLO
};

/// Full lifecycle of one request within its slot.
struct RequestRecord {
  ServeItem item;
  Outcome outcome = Outcome::kServed;
  int served_on = -1;            ///< serving edge; -1 for drops
  int variant = -1;              ///< model variant; -1 for drops
  int batch = 0;                 ///< members in its launch
  double formation_end_s = 0.0;  ///< batch sealed (last co-member ready/timeout)
  double start_s = 0.0;          ///< launch start on the accelerator
  double completion_s = 0.0;     ///< launch completion
  bool met_slo = false;

  /// Batch-formation wait: ready at the edge until the batch sealed.
  [[nodiscard]] double queue_wait_s() const noexcept {
    return formation_end_s - item.available_s;
  }
  /// Dispatch wait: batch sealed until the accelerator was free.
  [[nodiscard]] double dispatch_wait_s() const noexcept {
    return start_s - formation_end_s;
  }
  /// Execution latency of the launch.
  [[nodiscard]] double exec_s() const noexcept {
    return completion_s - start_s;
  }
  /// End-to-end sojourn from the user's arrival to completion.
  [[nodiscard]] double sojourn_s() const noexcept {
    return completion_s - item.arrival_s;
  }
};

}  // namespace birp::serve
