#include "birp/serve/engine.hpp"

#include <algorithm>
#include <future>

#include "birp/serve/batcher.hpp"
#include "birp/util/check.hpp"
#include "birp/util/rng.hpp"

namespace birp::serve {
namespace {

/// One executable job on an edge: a (app, variant) deployment with its
/// request count and kernel batch size (mirrors the simulator's Job).
struct Job {
  int app = 0;
  int variant = 0;
  std::int64_t served = 0;
  int kernel = 1;
};

}  // namespace

ServeEngine::ServeEngine(const device::ClusterSpec& cluster,
                         const workload::Trace& trace, ServeConfig config)
    : cluster_(cluster),
      trace_(trace),
      config_(config),
      batcher_(cluster, config.adaptive, config.guard_predictor),
      pool_(config.threads <= 0 ? 0 : static_cast<std::size_t>(config.threads)) {
  util::check(trace.apps() == cluster.num_apps(),
              "ServeEngine: trace apps != cluster apps");
  util::check(trace.devices() == cluster.num_devices(),
              "ServeEngine: trace devices != cluster devices");
  util::check(config_.noise_sigma >= 0.0, "ServeEngine: negative noise");
  util::check(config_.threads >= 0, "ServeEngine: negative thread count");
  util::check(config_.queue_capacity >= 0,
              "ServeEngine: negative queue capacity (0 = unbounded)");
  guard::validate(config_.guard);
  failover_ = fault::FailoverPolicy(config_.failover, cluster.num_apps(),
                                    cluster.num_devices());
  if (config_.guard.any_enabled()) {
    guard_.emplace(cluster, config_.guard, config_.guard_predictor);
  }
}

std::vector<ServeEngine::EdgeInput> ServeEngine::build_edge_inputs(
    const std::vector<workload::Arrival>& arrivals,
    const sim::SlotDecision& decision,
    const std::vector<double>& bandwidth_factors) const {
  const int I = cluster_.num_apps();
  const int K = cluster_.num_devices();

  // Per-(app, origin) arrival lists, in arrival order.
  std::vector<std::vector<ServeItem>> cells(
      static_cast<std::size_t>(I) * static_cast<std::size_t>(K));
  const auto cell = [K](int i, int k) {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(K) +
           static_cast<std::size_t>(k);
  };
  for (const auto& a : arrivals) {
    ServeItem item;
    item.app = a.app;
    item.origin = a.device;
    item.seq = a.seq;
    item.arrival_s = a.offset_s;
    item.available_s = a.offset_s;
    cells[cell(a.app, a.device)].push_back(item);
  }
  for (auto& list : cells) {
    std::sort(list.begin(), list.end(),
              [](const ServeItem& a, const ServeItem& b) {
                if (a.arrival_s != b.arrival_s) return a.arrival_s < b.arrival_s;
                return a.seq < b.seq;
              });
  }

  std::vector<EdgeInput> inputs(static_cast<std::size_t>(K));

  // Serve-local portions: the earliest arrivals stay home; the repaired
  // decision guarantees serve_local + exports + drops == demand per cell.
  std::vector<std::size_t> cursor(cells.size(), 0);
  for (int i = 0; i < I; ++i) {
    for (int k = 0; k < K; ++k) {
      auto& list = cells[cell(i, k)];
      std::int64_t serve_local = 0;
      for (int j = 0; j < decision.max_variants(); ++j) {
        serve_local += decision.served(i, j, k);
      }
      serve_local -= decision.imports(i, k);
      serve_local = std::clamp<std::int64_t>(
          serve_local, 0, static_cast<std::int64_t>(list.size()));
      for (std::int64_t r = 0; r < serve_local; ++r) {
        inputs[static_cast<std::size_t>(k)].stream.push_back(
            list[static_cast<std::size_t>(r)]);
      }
      cursor[cell(i, k)] = static_cast<std::size_t>(serve_local);
    }
  }

  // Redistribution: flows consume the next arrivals of their source cell in
  // decision order; the serving edge sees them after the wireless transfer.
  std::vector<std::vector<ServeItem>> imports(static_cast<std::size_t>(K));
  for (const auto& flow : decision.flows) {
    if (flow.count <= 0 || flow.from == flow.to) continue;
    auto& list = cells[cell(flow.app, flow.from)];
    auto& at = cursor[cell(flow.app, flow.from)];
    for (std::int64_t c = 0; c < flow.count && at < list.size(); ++c, ++at) {
      imports[static_cast<std::size_t>(flow.to)].push_back(list[at]);
    }
  }
  for (int k = 0; k < K; ++k) {
    auto& in = imports[static_cast<std::size_t>(k)];
    if (in.empty()) continue;
    // Transfer schedule (same model as the simulator): all imports stream
    // back-to-back over the edge's wireless link; import q of Q lands at
    // ((q+1)/Q) * total transfer time, and never before it left its origin.
    double total_mb = 0.0;
    for (const auto& item : in) {
      total_mb += cluster_.zoo().app(item.app).request_mb;
    }
    const double bw_factor =
        bandwidth_factors.empty() ? 1.0
                                  : bandwidth_factors[static_cast<std::size_t>(k)];
    const double transfer_total_s =
        total_mb * 8.0 / (cluster_.device(k).bandwidth_mbps * bw_factor);
    const auto total = static_cast<double>(in.size());
    for (std::size_t q = 0; q < in.size(); ++q) {
      auto& item = in[q];
      item.available_s =
          std::max(item.arrival_s,
                   transfer_total_s * static_cast<double>(q + 1) / total);
      inputs[static_cast<std::size_t>(k)].stream.push_back(item);
    }
  }

  // Whatever the decision did not serve or move is shed at the origin.
  for (int i = 0; i < I; ++i) {
    for (int k = 0; k < K; ++k) {
      const auto& list = cells[cell(i, k)];
      for (auto at = cursor[cell(i, k)]; at < list.size(); ++at) {
        inputs[static_cast<std::size_t>(k)].planned_drops.push_back(list[at]);
      }
    }
  }

  for (auto& input : inputs) {
    std::sort(input.stream.begin(), input.stream.end(),
              [](const ServeItem& a, const ServeItem& b) {
                if (a.available_s != b.available_s)
                  return a.available_s < b.available_s;
                if (a.app != b.app) return a.app < b.app;
                if (a.origin != b.origin) return a.origin < b.origin;
                return a.seq < b.seq;
              });
  }
  return inputs;
}

ServeEngine::EdgeOutcome ServeEngine::execute_edge(
    int k, const sim::SlotDecision& decision, int slot,
    std::vector<ServeItem> stream, double straggler_factor) const {
  const double tau = cluster_.tau_s();
  EdgeOutcome outcome;

  // Deterministic per-(slot, edge) noise stream — same recipe as the
  // simulator, so thread count can never change results.
  util::Xoshiro256StarStar rng(config_.seed ^
                               (0x9e3779b97f4a7c15ULL *
                                (static_cast<std::uint64_t>(slot) * 1024 +
                                 static_cast<std::uint64_t>(k) + 1)));

  std::vector<Job> jobs;
  for (int i = 0; i < cluster_.num_apps(); ++i) {
    const int variants = cluster_.zoo().num_variants(i);
    for (int j = 0; j < variants; ++j) {
      const auto served = decision.served(i, j, k);
      if (served <= 0) continue;
      jobs.push_back(
          Job{i, j, served, std::max(1, decision.kernel(i, j, k))});
    }
  }
  rng.shuffle(jobs);

  const double max_wait_s = config_.max_batch_wait_fraction < 0.0
                                ? -1.0
                                : config_.max_batch_wait_fraction * tau;

  // Accelerator-free time on this edge: launches dispatched so far end at
  // cursor_s, and the next one cannot start earlier. Declared ahead of the
  // admission gate so the gate can fold the execution backlog into its
  // sojourn prediction (admissions interleave with launches on this one
  // worker, so the captured reference is always current and race-free).
  double cursor_s = 0.0;

  // Deadline-aware admission: predict each arrival's sojourn against the
  // deployment the decision planned for its app on this edge (the variant
  // serving the most requests; ties to the cheaper one). GuardController::
  // admit is const and reads only immutable tables, so calling it from
  // concurrent per-edge workers is safe.
  AdmissionGate gate;
  if (guard_.has_value() && guard_->config().admission.enabled) {
    const int I = cluster_.num_apps();
    std::vector<int> gate_variant(static_cast<std::size_t>(I), -1);
    std::vector<int> gate_kernel(static_cast<std::size_t>(I), 1);
    for (int i = 0; i < I; ++i) {
      std::int64_t best = 0;
      for (int j = 0; j < cluster_.zoo().num_variants(i); ++j) {
        const auto served = decision.served(i, j, k);
        if (served > best) {
          best = served;
          gate_variant[static_cast<std::size_t>(i)] = j;
          gate_kernel[static_cast<std::size_t>(i)] =
              std::max(1, decision.kernel(i, j, k));
        }
      }
    }
    gate = [this, k, &cursor_s, gate_variant = std::move(gate_variant),
            gate_kernel = std::move(gate_kernel)](
               const ServeItem& item, std::int64_t buffered_ahead) {
      const int variant = gate_variant[static_cast<std::size_t>(item.app)];
      if (variant < 0) return true;  // no deployment: stranded path anyway
      return guard_->admit(k, item.app, variant,
                           gate_kernel[static_cast<std::size_t>(item.app)],
                           item.arrival_s, item.available_s, cursor_s,
                           buffered_ahead);
    };
  }

  AdmissionQueue queue(cluster_.num_apps(), std::move(stream),
                       config_.queue_capacity, config_.queue_policy,
                       std::move(gate));

  for (const auto& job : jobs) {
    std::int64_t remaining = job.served;
    bool first_launch = true;
    const double slo_s = cluster_.zoo().app(job.app).slo_fraction * tau;
    while (remaining > 0) {
      queue.fill(job.app, 1);
      const auto& fifo = queue.waiting(job.app);
      if (fifo.empty()) break;  // stream eaten by backpressure drops

      // Launch target: the MILP decision's kernel is a prior the adaptive
      // batcher may grow toward the job's backlog (a no-op when disabled).
      const auto backlog = static_cast<std::int64_t>(fifo.size()) +
                           queue.upstream(job.app);
      const auto need = static_cast<int>(std::min<std::int64_t>(
          remaining, batcher_.effective_target(job.kernel, backlog)));

      if (max_wait_s < 0.0) {
        queue.fill(job.app, static_cast<std::size_t>(need));
      } else {
        const double threshold =
            std::max(cursor_s, fifo.front().available_s + max_wait_s);
        queue.fill_until(job.app, static_cast<std::size_t>(need), threshold);
      }
      // Guard against planning a launch from a drained queue: when a slot
      // boundary lands exactly on a queue drain (every buffered request
      // gone, e.g. shed by the admission gate mid-fill), sealing would ask
      // seal_batch for an empty batch and trip its contract check.
      if (fifo.empty()) break;

      std::vector<ServeItem> candidates;
      const auto considered =
          std::min<std::size_t>(fifo.size(), static_cast<std::size_t>(need));
      candidates.reserve(considered);
      for (std::size_t m = 0; m < considered; ++m) {
        candidates.push_back(fifo[m]);
      }
      // More members can only come from requests still upstream in the
      // stream; everything already buffered is in `considered`.
      const bool more = queue.upstream(job.app) > 0;
      const auto plan =
          batcher_.plan(k, job.app, job.variant, candidates, job.kernel, need,
                        cursor_s, max_wait_s, more);
      const auto& seal = plan.seal;
      ++outcome.seals[static_cast<std::size_t>(plan.reason)];

      const auto members =
          queue.take(job.app, static_cast<std::size_t>(seal.count));
      queue.on_dispatch(seal.start_s, members.size());

      // Launch size: static-shape padding (MAX) bills the full kernel even
      // for a partial batch; otherwise the runtime right-sizes the launch.
      // A batch grown beyond the kernel is billed at its real size.
      const int launch_size =
          decision.pad_partial_launches ? std::max(job.kernel, seal.count)
                                        : seal.count;
      const double clean_s =
          cluster_.truth().batch_time_s(k, job.app, job.variant, launch_size);
      const double noise =
          config_.noise_sigma > 0.0
              ? rng.lognormal(-0.5 * config_.noise_sigma * config_.noise_sigma,
                              config_.noise_sigma)
              : 1.0;
      // Straggler faults stretch the launch; visible downstream as longer
      // busy time and a depressed observed TIR.
      const double duration_s = clean_s * noise * straggler_factor;
      const double completion_s = seal.start_s + duration_s;
      // The accelerator is serial: the next launch on this edge cannot start
      // before this one completes (batcher.hpp's cursor contract; the slot
      // simulator advances its cursor the same way).
      cursor_s = completion_s;
      outcome.busy_s += duration_s;
      outcome.loss += cluster_.zoo().variant(job.app, job.variant).loss *
                      static_cast<double>(seal.count);

      for (const auto& member : members) {
        RequestRecord record;
        record.item = member;
        record.outcome = Outcome::kServed;
        record.served_on = k;
        record.variant = job.variant;
        record.batch = seal.count;
        record.formation_end_s = seal.formation_end_s;
        record.start_s = seal.start_s;
        record.completion_s = completion_s;
        record.met_slo = record.sojourn_s() <= slo_s + 1e-12;
        outcome.records.push_back(record);
      }

      // With adaptive batching every launch reports an observation, so the
      // TIR tuner sees the realized batch-size distribution (grown and
      // early-sealed launches included), not just the decided kernel; the
      // fixed rule keeps the first-launch-only behavior bit for bit.
      if ((first_launch || batcher_.enabled()) && config_.report_observations) {
        // Observed TIR per Eq. 1: the merged kernel processed `launch_size`
        // items in duration_s versus gamma each when serial.
        sim::TirObservation obs;
        obs.device = k;
        obs.app = job.app;
        obs.variant = job.variant;
        obs.batch = launch_size;
        obs.observed_tir = static_cast<double>(launch_size) *
                           cluster_.truth().gamma_s(k, job.app, job.variant) /
                           duration_s;
        outcome.observations.push_back(obs);
        first_launch = false;
      }

      remaining -= seal.count;
    }
  }

  // Backpressure drops.
  for (const auto& item : queue.dropped()) {
    RequestRecord record;
    record.item = item;
    record.outcome = Outcome::kQueueDrop;
    record.served_on = k;
    outcome.records.push_back(record);
  }
  // Deadline-aware admission sheds.
  for (const auto& item : queue.deadline_shed()) {
    RequestRecord record;
    record.item = item;
    record.outcome = Outcome::kDeadlineShed;
    record.served_on = k;
    outcome.records.push_back(record);
  }
  // Stranded requests (stream larger than the decision's serve counts —
  // only possible on a malformed repair): shed like planned drops so every
  // arrival is accounted exactly once.
  for (const auto& item : queue.drain_waiting()) {
    RequestRecord record;
    record.item = item;
    record.outcome = Outcome::kPlannedDrop;
    record.served_on = k;
    outcome.records.push_back(record);
  }
  for (const auto& item : queue.drain_unprocessed()) {
    RequestRecord record;
    record.item = item;
    record.outcome = Outcome::kPlannedDrop;
    record.served_on = k;
    outcome.records.push_back(record);
  }
  outcome.depth_stats = queue.depth_stats();
  return outcome;
}

SlotServeResult ServeEngine::step(sim::Scheduler& scheduler,
                                  metrics::RunMetrics* metrics) {
  util::check(slot_ < trace_.slots(), "ServeEngine: horizon exhausted");
  const int t = slot_;
  const int K = cluster_.num_devices();
  const double tau = cluster_.tau_s();

  const int I = cluster_.num_apps();
  auto arrivals = workload::slot_arrivals(trace_, t, tau, config_.seed);

  // Resolve this slot's fault picture. With an empty plan every branch below
  // degenerates to the fault-free path.
  const bool have_faults = !config_.fault_plan.empty();
  const std::vector<std::uint8_t> up =
      have_faults ? config_.fault_plan.up_mask(K, t)
                  : std::vector<std::uint8_t>(static_cast<std::size_t>(K), 1);
  const auto is_up = [&up](int k) {
    return up[static_cast<std::size_t>(k)] != 0;
  };

  // Demand is derived from the arrivals (not read from the trace) so the
  // scheduler sees exactly what the request stream contains.
  sim::SlotState state;
  state.slot = t;
  state.demand =
      util::Grid2<std::int64_t>(cluster_.num_apps(), K, 0);
  for (const auto& a : arrivals) ++state.demand(a.app, a.device);

  // Overload protection: hints derived from earlier slots' outcomes steer
  // this slot's decision (breaker avoid mask, ladder variant caps) and the
  // failover re-admission targets.
  const sim::SchedulerHints* hints = nullptr;
  if (guard_.has_value()) {
    hints = &guard_->begin_slot(t);
    state.hints = hints;
  }

  SlotServeResult result;
  if (have_faults) {
    state.edge_up = up;
    if (failover_.enabled()) {
      // Orphans whose backoff window elapsed re-enter as synthetic arrivals
      // at surviving edges (routed around breaker-open pairs): available at
      // the slot start (they have been waiting since their failure), with
      // fresh sequence numbers after the cell's real arrivals.
      const auto& readmit = failover_.begin_slot(
          t, up, hints != nullptr ? &hints->avoid_import : nullptr);
      for (int i = 0; i < I; ++i) {
        for (int k = 0; k < K; ++k) {
          const std::int64_t count = readmit(i, k);
          if (count == 0) continue;
          for (std::int64_t r = 0; r < count; ++r) {
            workload::Arrival a;
            a.slot = t;
            a.app = i;
            a.device = k;
            a.seq = state.demand(i, k) + r;
            a.offset_s = 0.0;
            arrivals.push_back(a);
          }
          state.demand(i, k) += count;
        }
      }
    }
  }
  state.previous = previous_.has_value() ? &previous_.value() : nullptr;

  result.decision = scheduler.decide(state);
  result.repairs = sim::validate_and_repair(cluster_, state.demand,
                                            state.previous, result.decision);

  std::vector<double> bandwidth_factors;
  if (have_faults) {
    bandwidth_factors.resize(static_cast<std::size_t>(K), 1.0);
    for (int k = 0; k < K; ++k) {
      bandwidth_factors[static_cast<std::size_t>(k)] =
          config_.fault_plan.bandwidth_factor(k, t);
    }
  }
  auto inputs = build_edge_inputs(arrivals, result.decision,
                                  bandwidth_factors);

  // Orphans: a down edge loses its whole stream (nothing executes there) and
  // its region's planned drops (the region is dark, not shed); a live edge
  // loses the imports whose origin died (lost in transit). Attribution is by
  // origin cell, which is also where failover injects retries.
  std::vector<std::vector<ServeItem>> orphan_items;
  if (have_faults) {
    orphan_items.assign(
        static_cast<std::size_t>(I) * static_cast<std::size_t>(K), {});
    const auto cell = [K](int i, int k) {
      return static_cast<std::size_t>(i) * static_cast<std::size_t>(K) +
             static_cast<std::size_t>(k);
    };
    for (int k = 0; k < K; ++k) {
      auto& input = inputs[static_cast<std::size_t>(k)];
      if (!is_up(k)) {
        for (const auto& item : input.stream) {
          orphan_items[cell(item.app, item.origin)].push_back(item);
        }
        input.stream.clear();
        for (const auto& item : input.planned_drops) {
          orphan_items[cell(item.app, item.origin)].push_back(item);
        }
        input.planned_drops.clear();
        continue;
      }
      // Live edge: strip imports from dead origins out of the stream.
      auto dead_origin = [&](const ServeItem& item) {
        return !is_up(item.origin);
      };
      auto it = std::stable_partition(
          input.stream.begin(), input.stream.end(),
          [&](const ServeItem& item) { return !dead_origin(item); });
      for (auto lost = it; lost != input.stream.end(); ++lost) {
        orphan_items[cell(lost->app, lost->origin)].push_back(*lost);
      }
      input.stream.erase(it, input.stream.end());
    }
  }

  // Execute the live edges concurrently; outcomes merge deterministically
  // below. Down edges execute nothing this slot.
  std::vector<std::future<EdgeOutcome>> futures(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    if (!is_up(k)) continue;
    const double straggler =
        have_faults ? config_.fault_plan.straggler_factor(k, t) : 1.0;
    futures[static_cast<std::size_t>(k)] =
        pool_.submit([this, k, t, &result, &inputs, straggler] {
          return execute_edge(
              k, result.decision, t,
              std::move(inputs[static_cast<std::size_t>(k)].stream),
              straggler);
        });
  }

  result.feedback.slot = t;
  result.feedback.busy_s.resize(static_cast<std::size_t>(K), 0.0);
  double slot_loss = 0.0;

  // Serving-path outcome tallies feeding the guard's breakers and ladder.
  util::Grid2<guard::GuardController::CellStats> guard_cells;
  std::vector<std::int64_t> app_demand;
  std::vector<std::int64_t> app_shed;
  if (guard_.has_value()) {
    guard_cells = util::Grid2<guard::GuardController::CellStats>(I, K);
    app_demand.assign(static_cast<std::size_t>(I), 0);
    app_shed.assign(static_cast<std::size_t>(I), 0);
    for (int i = 0; i < I; ++i) {
      for (int k = 0; k < K; ++k) {
        app_demand[static_cast<std::size_t>(i)] += state.demand(i, k);
      }
    }
  }
  for (int k = 0; k < K; ++k) {
    if (have_faults && metrics != nullptr) {
      metrics->record_edge_slot(k, is_up(k));
    }
    if (!is_up(k)) continue;  // dead edge: zero busy, no energy, no samples
    EdgeOutcome outcome = futures[static_cast<std::size_t>(k)].get();
    result.feedback.busy_s[static_cast<std::size_t>(k)] = outcome.busy_s;
    result.feedback.observations.insert(result.feedback.observations.end(),
                                        outcome.observations.begin(),
                                        outcome.observations.end());
    for (std::size_t r = 0; r < outcome.seals.size(); ++r) {
      result.seals[r] += outcome.seals[r];
      if (metrics != nullptr && outcome.seals[r] > 0) {
        metrics->record_batch_seals(static_cast<int>(r), outcome.seals[r]);
      }
    }
    slot_loss += outcome.loss;
    for (const auto& record : outcome.records) {
      switch (record.outcome) {
        case Outcome::kServed:
          ++result.served;
          if (!record.met_slo) ++result.slo_failures;
          if (metrics != nullptr) {
            metrics->record_request(record.sojourn_s() / tau, record.met_slo);
            metrics->record_request_waits(record.queue_wait_s() / tau,
                                          record.dispatch_wait_s() / tau,
                                          record.exec_s() / tau);
          }
          break;
        case Outcome::kQueueDrop:
          ++result.queue_drops;
          ++result.slo_failures;
          slot_loss += cluster_.zoo().worst_loss(record.item.app);
          if (metrics != nullptr) metrics->record_queue_drop();
          break;
        case Outcome::kPlannedDrop:
          ++result.planned_drops;
          ++result.slo_failures;
          slot_loss += cluster_.zoo().worst_loss(record.item.app);
          if (metrics != nullptr) metrics->record_dropped();
          break;
        case Outcome::kDeadlineShed:
          ++result.deadline_sheds;
          ++result.slo_failures;
          slot_loss += cluster_.zoo().worst_loss(record.item.app);
          if (metrics != nullptr) metrics->record_deadline_shed();
          break;
        case Outcome::kOrphaned:
          // Orphans are resolved below from orphan_items, never inside
          // execute_edge.
          break;
      }
      // Breaker food: serving-path verdicts only (served / backpressure /
      // deadline shed). Planned drops are the scheduler's doing, not the
      // serving edge's, and feed the ladder's shed signal instead.
      if (guard_.has_value() && (record.outcome == Outcome::kServed ||
                                 record.outcome == Outcome::kQueueDrop ||
                                 record.outcome == Outcome::kDeadlineShed)) {
        auto& cell_stats = guard_cells(record.item.app, k);
        ++cell_stats.total;
        if (record.outcome != Outcome::kServed || !record.met_slo) {
          ++cell_stats.failed;
        }
        if (record.outcome == Outcome::kDeadlineShed) {
          ++app_shed[static_cast<std::size_t>(record.item.app)];
        }
      }
    }
    if (metrics != nullptr) {
      metrics->record_edge_busy(outcome.busy_s / tau);
      metrics->record_energy(
          cluster_.device(k).slot_energy_j(outcome.busy_s, tau));
      metrics->merge_queue_depth(outcome.depth_stats);
    }
    if (config_.keep_records) {
      result.records.insert(result.records.end(), outcome.records.begin(),
                            outcome.records.end());
    }
  }

  // Requests the decision shed at their origin (never routed anywhere).
  for (int k = 0; k < K; ++k) {
    for (const auto& item : inputs[static_cast<std::size_t>(k)].planned_drops) {
      ++result.planned_drops;
      ++result.slo_failures;
      slot_loss += cluster_.zoo().worst_loss(item.app);
      if (metrics != nullptr) metrics->record_dropped();
      if (config_.keep_records) {
        RequestRecord record;
        record.item = item;
        record.outcome = Outcome::kPlannedDrop;
        result.records.push_back(record);
      }
    }
  }

  // Resolve orphans: the failover policy splits each origin cell's losses
  // into retries (vanish here, reappear as synthetic arrivals next slot) and
  // terminal drops (worst-model loss + SLO failure). The oldest requests get
  // the retry slots.
  if (have_faults) {
    for (int i = 0; i < I; ++i) {
      const double worst = cluster_.zoo().worst_loss(i);
      for (int k = 0; k < K; ++k) {
        auto& items = orphan_items[static_cast<std::size_t>(i) *
                                       static_cast<std::size_t>(K) +
                                   static_cast<std::size_t>(k)];
        if (items.empty()) continue;
        std::sort(items.begin(), items.end(),
                  [](const ServeItem& a, const ServeItem& b) {
                    return a.seq < b.seq;
                  });
        const auto outcome = failover_.on_orphans(
            i, k, static_cast<std::int64_t>(items.size()));
        result.retried += outcome.retried;
        if (metrics != nullptr) metrics->record_retries(outcome.retried);
        for (std::size_t r = static_cast<std::size_t>(outcome.retried);
             r < items.size(); ++r) {
          ++result.orphaned;
          ++result.slo_failures;
          slot_loss += worst;
          if (metrics != nullptr) metrics->record_orphan_drop();
          if (config_.keep_records) {
            RequestRecord record;
            record.item = items[r];
            record.outcome = Outcome::kOrphaned;
            result.records.push_back(record);
          }
        }
      }
    }
  }
  // Slot-boundary guard bookkeeping: breakers fold this slot's outcomes
  // into their windows, the ladder reacts to shed pressure and open
  // breakers; transitions land in the metrics.
  if (guard_.has_value()) {
    const auto summary = guard_->end_slot(guard_cells, app_demand, app_shed);
    if (metrics != nullptr) {
      metrics->record_breaker_events(summary.trips, summary.reopens,
                                     summary.probes, summary.recoveries);
      metrics->record_degradation(summary.degraded_apps, summary.max_level);
    }
  }

  result.slot_loss = slot_loss;
  if (metrics != nullptr) metrics->record_slot_loss(slot_loss);

  scheduler.observe(result.feedback);
  previous_ = result.decision;
  ++slot_;
  return result;
}

metrics::RunMetrics ServeEngine::run(sim::Scheduler& scheduler, int max_slots) {
  const int horizon = max_slots > 0 ? std::min(max_slots, trace_.slots())
                                    : trace_.slots();
  metrics::RunMetrics metrics(horizon);
  while (slot_ < horizon) step(scheduler, &metrics);
  // Flush failover: orphans still awaiting re-admission at the horizon are
  // terminal losses.
  for (std::int64_t d = failover_.drain_pending(); d > 0; --d) {
    metrics.record_orphan_drop();
  }
  metrics.set_solver_fallbacks(scheduler.fallback_count());
  return metrics;
}

}  // namespace birp::serve
