#include "birp/serve/engine.hpp"

#include <algorithm>
#include <future>

#include "birp/serve/batcher.hpp"
#include "birp/util/alloc_count.hpp"
#include "birp/util/check.hpp"
#include "birp/util/rng.hpp"

namespace birp::serve {

ServeEngine::ServeEngine(const device::ClusterSpec& cluster,
                         const workload::Trace& trace, ServeConfig config)
    : cluster_(cluster),
      trace_(trace),
      config_(config),
      batcher_(cluster, config.adaptive, config.guard_predictor),
      pool_(config.threads <= 0 ? 0 : static_cast<std::size_t>(config.threads)) {
  util::check(trace.apps() == cluster.num_apps(),
              "ServeEngine: trace apps != cluster apps");
  util::check(trace.devices() == cluster.num_devices(),
              "ServeEngine: trace devices != cluster devices");
  util::check(config_.noise_sigma >= 0.0, "ServeEngine: negative noise");
  util::check(config_.threads >= 0, "ServeEngine: negative thread count");
  util::check(config_.queue_capacity >= 0,
              "ServeEngine: negative queue capacity (0 = unbounded)");
  guard::validate(config_.guard);
  failover_ = fault::FailoverPolicy(config_.failover, cluster.num_apps(),
                                    cluster.num_devices());
  if (config_.guard.any_enabled()) {
    guard_.emplace(cluster, config_.guard, config_.guard_predictor);
  }
  const auto I = static_cast<std::size_t>(cluster.num_apps());
  const auto K = static_cast<std::size_t>(cluster.num_devices());
  shards_ = std::vector<EdgeShard>(K);
  inputs_.resize(K);
  cells_scratch_.resize(I * K);
  cursor_scratch_.resize(I * K, 0);
  imports_scratch_.resize(K);
  orphan_scratch_.resize(I * K);

  // Construction-time warmup: pre-carve every per-edge container to the
  // trace's worst slot, so the hot path never allocates — not even while
  // random burst timing nudges per-launch high-water marks around. An
  // edge's slot stream (local + imports) is bounded by the slot's total
  // demand; failover re-admissions can exceed it, in which case the grow-
  // only containers absorb the difference once and go quiet again.
  std::int64_t worst_slot = 0;
  for (int t = 0; t < trace.slots(); ++t) {
    worst_slot = std::max(worst_slot, trace.slot_total(t));
  }
  const auto per_edge = static_cast<std::size_t>(worst_slot);
  const auto max_batch = static_cast<std::size_t>(sim::kMaxKernelBatch);
  for (auto& shard : shards_) {
    shard.queue.reserve(cluster.num_apps(), per_edge);
    shard.outcome.records.reserve(per_edge);
    shard.outcome.observations.reserve(per_edge);
    shard.members.reserve(std::max(per_edge, max_batch));
    shard.candidates.reserve(max_batch);
    shard.avail_scratch.reserve(max_batch);
    shard.jobs.reserve(I * static_cast<std::size_t>(
                               cluster.zoo().max_variants()));
    shard.gate_variant.reserve(I);
    shard.gate_kernel.reserve(I);
  }
}

bool ServeEngine::admission_gate_thunk(const void* ctx, const ServeItem& item,
                                       std::int64_t buffered_ahead) {
  const auto& gc = *static_cast<const GateContext*>(ctx);
  const EdgeShard& shard = *gc.shard;
  const int variant = shard.gate_variant[static_cast<std::size_t>(item.app)];
  if (variant < 0) return true;  // no deployment: stranded path anyway
  return gc.engine->guard_->admit(
      gc.edge, item.app, variant,
      shard.gate_kernel[static_cast<std::size_t>(item.app)], item.arrival_s,
      item.available_s, shard.cursor_s, buffered_ahead);
}

void ServeEngine::build_edge_inputs(
    const std::vector<workload::Arrival>& arrivals,
    const sim::SlotDecision& decision,
    const std::vector<double>& bandwidth_factors) {
  const int I = cluster_.num_apps();
  const int K = cluster_.num_devices();

  // Per-(app, origin) arrival lists, in arrival order. All containers here
  // are persistent scratch: cleared, never shrunk, so the per-slot path
  // stops allocating once every cell has seen its high-water arrival count.
  auto& cells = cells_scratch_;
  for (auto& list : cells) list.clear();
  const auto cell = [K](int i, int k) {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(K) +
           static_cast<std::size_t>(k);
  };
  for (const auto& a : arrivals) {
    ServeItem item;
    item.app = a.app;
    item.origin = a.device;
    item.seq = a.seq;
    item.arrival_s = a.offset_s;
    item.available_s = a.offset_s;
    cells[cell(a.app, a.device)].push_back(item);
  }
  for (auto& list : cells) {
    std::sort(list.begin(), list.end(),
              [](const ServeItem& a, const ServeItem& b) {
                if (a.arrival_s != b.arrival_s) return a.arrival_s < b.arrival_s;
                return a.seq < b.seq;
              });
  }

  for (auto& input : inputs_) {
    input.stream.clear();
    input.planned_drops.clear();
  }

  // Serve-local portions: the earliest arrivals stay home; the repaired
  // decision guarantees serve_local + exports + drops == demand per cell.
  auto& cursor = cursor_scratch_;
  std::fill(cursor.begin(), cursor.end(), 0);
  for (int i = 0; i < I; ++i) {
    for (int k = 0; k < K; ++k) {
      auto& list = cells[cell(i, k)];
      std::int64_t serve_local = 0;
      for (int j = 0; j < decision.max_variants(); ++j) {
        serve_local += decision.served(i, j, k);
      }
      serve_local -= decision.imports(i, k);
      serve_local = std::clamp<std::int64_t>(
          serve_local, 0, static_cast<std::int64_t>(list.size()));
      for (std::int64_t r = 0; r < serve_local; ++r) {
        inputs_[static_cast<std::size_t>(k)].stream.push_back(
            list[static_cast<std::size_t>(r)]);
      }
      cursor[cell(i, k)] = static_cast<std::size_t>(serve_local);
    }
  }

  // Redistribution: flows consume the next arrivals of their source cell in
  // decision order; the serving edge sees them after the wireless transfer.
  auto& imports = imports_scratch_;
  for (auto& in : imports) in.clear();
  for (const auto& flow : decision.flows) {
    if (flow.count <= 0 || flow.from == flow.to) continue;
    auto& list = cells[cell(flow.app, flow.from)];
    auto& at = cursor[cell(flow.app, flow.from)];
    for (std::int64_t c = 0; c < flow.count && at < list.size(); ++c, ++at) {
      imports[static_cast<std::size_t>(flow.to)].push_back(list[at]);
    }
  }
  for (int k = 0; k < K; ++k) {
    auto& in = imports[static_cast<std::size_t>(k)];
    if (in.empty()) continue;
    // Transfer schedule (same model as the simulator): all imports stream
    // back-to-back over the edge's wireless link; import q of Q lands at
    // ((q+1)/Q) * total transfer time, and never before it left its origin.
    double total_mb = 0.0;
    for (const auto& item : in) {
      total_mb += cluster_.zoo().app(item.app).request_mb;
    }
    const double bw_factor =
        bandwidth_factors.empty() ? 1.0
                                  : bandwidth_factors[static_cast<std::size_t>(k)];
    const double transfer_total_s =
        total_mb * 8.0 / (cluster_.device(k).bandwidth_mbps * bw_factor);
    const auto total = static_cast<double>(in.size());
    for (std::size_t q = 0; q < in.size(); ++q) {
      auto& item = in[q];
      item.available_s =
          std::max(item.arrival_s,
                   transfer_total_s * static_cast<double>(q + 1) / total);
      inputs_[static_cast<std::size_t>(k)].stream.push_back(item);
    }
  }

  // Whatever the decision did not serve or move is shed at the origin.
  for (int i = 0; i < I; ++i) {
    for (int k = 0; k < K; ++k) {
      const auto& list = cells[cell(i, k)];
      for (auto at = cursor[cell(i, k)]; at < list.size(); ++at) {
        inputs_[static_cast<std::size_t>(k)].planned_drops.push_back(list[at]);
      }
    }
  }

  for (auto& input : inputs_) {
    std::sort(input.stream.begin(), input.stream.end(),
              [](const ServeItem& a, const ServeItem& b) {
                if (a.available_s != b.available_s)
                  return a.available_s < b.available_s;
                if (a.app != b.app) return a.app < b.app;
                if (a.origin != b.origin) return a.origin < b.origin;
                return a.seq < b.seq;
              });
  }
}

void ServeEngine::execute_edge(int k, const sim::SlotDecision& decision,
                               int slot, const std::vector<ServeItem>& stream,
                               double straggler_factor) {
  const double tau = cluster_.tau_s();
  EdgeShard& shard = shards_[static_cast<std::size_t>(k)];
  EdgeOutcome& outcome = shard.outcome;
  outcome.records.clear();
  outcome.observations.clear();
  outcome.seals.fill(0);
  outcome.depth_stats = util::RunningStats{};
  outcome.busy_s = 0.0;
  outcome.loss = 0.0;
  outcome.hot_allocs = 0;
  // Thread-local allocation odometer for this edge's hot path; stays 0
  // unless a BIRP_COUNT_ALLOCS hook is linked into the binary.
  const std::int64_t allocs_before = util::alloc_counts().allocs;

  // Deterministic per-(slot, edge) noise stream — same recipe as the
  // simulator, so thread count can never change results.
  util::Xoshiro256StarStar rng(config_.seed ^
                               (0x9e3779b97f4a7c15ULL *
                                (static_cast<std::uint64_t>(slot) * 1024 +
                                 static_cast<std::uint64_t>(k) + 1)));

  auto& jobs = shard.jobs;
  jobs.clear();
  for (int i = 0; i < cluster_.num_apps(); ++i) {
    const int variants = cluster_.zoo().num_variants(i);
    for (int j = 0; j < variants; ++j) {
      const auto served = decision.served(i, j, k);
      if (served <= 0) continue;
      jobs.push_back(
          Job{i, j, served, std::max(1, decision.kernel(i, j, k))});
    }
  }
  rng.shuffle(jobs);

  const double max_wait_s = config_.max_batch_wait_fraction < 0.0
                                ? -1.0
                                : config_.max_batch_wait_fraction * tau;

  // Accelerator-free time on this edge. Lives in the shard so the admission
  // gate can fold the execution backlog into its sojourn prediction
  // (admissions interleave with launches on this one worker, so the read is
  // always current and race-free).
  shard.cursor_s = 0.0;

  // Deadline-aware admission: predict each arrival's sojourn against the
  // deployment the decision planned for its app on this edge (the variant
  // serving the most requests; ties to the cheaper one). GuardController::
  // admit is const and reads only immutable tables, so calling it from
  // concurrent per-edge workers is safe.
  AdmissionGate gate;
  if (guard_.has_value() && guard_->config().admission.enabled) {
    const int I = cluster_.num_apps();
    shard.gate_variant.assign(static_cast<std::size_t>(I), -1);
    shard.gate_kernel.assign(static_cast<std::size_t>(I), 1);
    for (int i = 0; i < I; ++i) {
      std::int64_t best = 0;
      for (int j = 0; j < cluster_.zoo().num_variants(i); ++j) {
        const auto served = decision.served(i, j, k);
        if (served > best) {
          best = served;
          shard.gate_variant[static_cast<std::size_t>(i)] = j;
          shard.gate_kernel[static_cast<std::size_t>(i)] =
              std::max(1, decision.kernel(i, j, k));
        }
      }
    }
    shard.gate_ctx = GateContext{this, &shard, k};
    gate = AdmissionGate(&shard.gate_ctx, &ServeEngine::admission_gate_thunk);
  }

  // Re-arm the persistent queue and stage this slot's stream. Staging is
  // single-producer here (the stream is already merged and sorted); the
  // MPSC ring exists for callers that stage from many threads. The wheel's
  // resolution spreads one slot across ~64 fine buckets; it affects only
  // wheel cost, never results.
  auto& queue = shard.queue;
  queue.reset(cluster_.num_apps(), config_.queue_capacity,
              config_.queue_policy, gate, stream.size(), 0.0, tau / 64.0);
  util::check(queue.offer_all(stream.data(), stream.size()),
              "ServeEngine: staging ring overflow");

  for (const auto& job : jobs) {
    std::int64_t remaining = job.served;
    bool first_launch = true;
    const double slo_s = cluster_.zoo().app(job.app).slo_fraction * tau;
    while (remaining > 0) {
      queue.fill(job.app, 1);
      const auto fifo = queue.waiting(job.app);  // live view
      if (fifo.empty()) break;  // stream eaten by backpressure drops

      // Launch target: the MILP decision's kernel is a prior the adaptive
      // batcher may grow toward the job's backlog (a no-op when disabled).
      const auto backlog = static_cast<std::int64_t>(fifo.size()) +
                           queue.upstream(job.app);
      const auto need = static_cast<int>(std::min<std::int64_t>(
          remaining, batcher_.effective_target(job.kernel, backlog)));

      if (max_wait_s < 0.0) {
        queue.fill(job.app, static_cast<std::size_t>(need));
      } else {
        const double threshold =
            std::max(shard.cursor_s, fifo.front().available_s + max_wait_s);
        queue.fill_until(job.app, static_cast<std::size_t>(need), threshold);
      }
      // Guard against planning a launch from a drained queue: when a slot
      // boundary lands exactly on a queue drain (every buffered request
      // gone, e.g. shed by the admission gate mid-fill), sealing would ask
      // seal_batch for an empty batch and trip its contract check.
      if (fifo.empty()) break;

      auto& candidates = shard.candidates;
      candidates.clear();
      const auto considered =
          std::min<std::size_t>(fifo.size(), static_cast<std::size_t>(need));
      std::size_t taken = 0;
      for (auto it = fifo.begin(); taken < considered; ++it, ++taken) {
        candidates.push_back(*it);
      }
      // More members can only come from requests still upstream in the
      // stream; everything already buffered is in `considered`.
      const bool more = queue.upstream(job.app) > 0;
      const auto plan = batcher_.plan(k, job.app, job.variant, candidates,
                                      job.kernel, need, shard.cursor_s,
                                      max_wait_s, more, &shard.avail_scratch);
      const auto& seal = plan.seal;
      ++outcome.seals[static_cast<std::size_t>(plan.reason)];

      auto& members = shard.members;
      queue.take_into(job.app, static_cast<std::size_t>(seal.count), members);
      queue.on_dispatch(seal.start_s, members.size());

      // Launch size: static-shape padding (MAX) bills the full kernel even
      // for a partial batch; otherwise the runtime right-sizes the launch.
      // A batch grown beyond the kernel is billed at its real size.
      const int launch_size =
          decision.pad_partial_launches ? std::max(job.kernel, seal.count)
                                        : seal.count;
      const double clean_s =
          cluster_.truth().batch_time_s(k, job.app, job.variant, launch_size);
      const double noise =
          config_.noise_sigma > 0.0
              ? rng.lognormal(-0.5 * config_.noise_sigma * config_.noise_sigma,
                              config_.noise_sigma)
              : 1.0;
      // Straggler faults stretch the launch; visible downstream as longer
      // busy time and a depressed observed TIR.
      const double duration_s = clean_s * noise * straggler_factor;
      const double completion_s = seal.start_s + duration_s;
      // The accelerator is serial: the next launch on this edge cannot start
      // before this one completes (batcher.hpp's cursor contract; the slot
      // simulator advances its cursor the same way).
      shard.cursor_s = completion_s;
      outcome.busy_s += duration_s;
      outcome.loss += cluster_.zoo().variant(job.app, job.variant).loss *
                      static_cast<double>(seal.count);

      for (const auto& member : members) {
        RequestRecord record;
        record.item = member;
        record.outcome = Outcome::kServed;
        record.served_on = k;
        record.variant = job.variant;
        record.batch = seal.count;
        record.formation_end_s = seal.formation_end_s;
        record.start_s = seal.start_s;
        record.completion_s = completion_s;
        record.met_slo = record.sojourn_s() <= slo_s + 1e-12;
        outcome.records.push_back(record);
      }

      // With adaptive batching every launch reports an observation, so the
      // TIR tuner sees the realized batch-size distribution (grown and
      // early-sealed launches included), not just the decided kernel; the
      // fixed rule keeps the first-launch-only behavior bit for bit.
      if ((first_launch || batcher_.enabled()) && config_.report_observations) {
        // Observed TIR per Eq. 1: the merged kernel processed `launch_size`
        // items in duration_s versus gamma each when serial.
        sim::TirObservation obs;
        obs.device = k;
        obs.app = job.app;
        obs.variant = job.variant;
        obs.batch = launch_size;
        obs.observed_tir = static_cast<double>(launch_size) *
                           cluster_.truth().gamma_s(k, job.app, job.variant) /
                           duration_s;
        outcome.observations.push_back(obs);
        first_launch = false;
      }

      remaining -= seal.count;
    }
  }

  // Backpressure drops.
  for (const auto& item : queue.dropped()) {
    RequestRecord record;
    record.item = item;
    record.outcome = Outcome::kQueueDrop;
    record.served_on = k;
    outcome.records.push_back(record);
  }
  // Deadline-aware admission sheds.
  for (const auto& item : queue.deadline_shed()) {
    RequestRecord record;
    record.item = item;
    record.outcome = Outcome::kDeadlineShed;
    record.served_on = k;
    outcome.records.push_back(record);
  }
  // Stranded requests (stream larger than the decision's serve counts —
  // only possible on a malformed repair): shed like planned drops so every
  // arrival is accounted exactly once.
  queue.drain_waiting_into(shard.members);
  for (const auto& item : shard.members) {
    RequestRecord record;
    record.item = item;
    record.outcome = Outcome::kPlannedDrop;
    record.served_on = k;
    outcome.records.push_back(record);
  }
  queue.drain_unprocessed_into(shard.members);
  for (const auto& item : shard.members) {
    RequestRecord record;
    record.item = item;
    record.outcome = Outcome::kPlannedDrop;
    record.served_on = k;
    outcome.records.push_back(record);
  }
  outcome.depth_stats = queue.depth_stats();
  outcome.hot_allocs = util::alloc_counts().allocs - allocs_before;
}

SlotServeResult ServeEngine::step(sim::Scheduler& scheduler,
                                  metrics::RunMetrics* metrics) {
  util::check(slot_ < trace_.slots(), "ServeEngine: horizon exhausted");
  const int t = slot_;
  const int K = cluster_.num_devices();
  const double tau = cluster_.tau_s();

  const int I = cluster_.num_apps();
  auto arrivals = workload::slot_arrivals(trace_, t, tau, config_.seed);

  // Resolve this slot's fault picture. With an empty plan every branch below
  // degenerates to the fault-free path.
  const bool have_faults = !config_.fault_plan.empty();
  const std::vector<std::uint8_t> up =
      have_faults ? config_.fault_plan.up_mask(K, t)
                  : std::vector<std::uint8_t>(static_cast<std::size_t>(K), 1);
  const auto is_up = [&up](int k) {
    return up[static_cast<std::size_t>(k)] != 0;
  };

  // Demand is derived from the arrivals (not read from the trace) so the
  // scheduler sees exactly what the request stream contains.
  sim::SlotState state;
  state.slot = t;
  state.demand =
      util::Grid2<std::int64_t>(cluster_.num_apps(), K, 0);
  for (const auto& a : arrivals) ++state.demand(a.app, a.device);

  // Overload protection: hints derived from earlier slots' outcomes steer
  // this slot's decision (breaker avoid mask, ladder variant caps) and the
  // failover re-admission targets.
  const sim::SchedulerHints* hints = nullptr;
  if (guard_.has_value()) {
    hints = &guard_->begin_slot(t);
    state.hints = hints;
  }

  SlotServeResult result;
  if (have_faults) {
    state.edge_up = up;
    if (failover_.enabled()) {
      // Orphans whose backoff window elapsed re-enter as synthetic arrivals
      // at surviving edges (routed around breaker-open pairs): available at
      // the slot start (they have been waiting since their failure), with
      // fresh sequence numbers after the cell's real arrivals.
      const auto& readmit = failover_.begin_slot(
          t, up, hints != nullptr ? &hints->avoid_import : nullptr);
      for (int i = 0; i < I; ++i) {
        for (int k = 0; k < K; ++k) {
          const std::int64_t count = readmit(i, k);
          if (count == 0) continue;
          for (std::int64_t r = 0; r < count; ++r) {
            workload::Arrival a;
            a.slot = t;
            a.app = i;
            a.device = k;
            a.seq = state.demand(i, k) + r;
            a.offset_s = 0.0;
            arrivals.push_back(a);
          }
          state.demand(i, k) += count;
        }
      }
    }
  }
  state.previous = previous_.has_value() ? &previous_.value() : nullptr;

  result.decision = scheduler.decide(state);
  result.repairs = sim::validate_and_repair(cluster_, state.demand,
                                            state.previous, result.decision);

  std::vector<double> bandwidth_factors;
  if (have_faults) {
    bandwidth_factors.resize(static_cast<std::size_t>(K), 1.0);
    for (int k = 0; k < K; ++k) {
      bandwidth_factors[static_cast<std::size_t>(k)] =
          config_.fault_plan.bandwidth_factor(k, t);
    }
  }
  build_edge_inputs(arrivals, result.decision, bandwidth_factors);

  // Orphans: a down edge loses its whole stream (nothing executes there) and
  // its region's planned drops (the region is dark, not shed); a live edge
  // loses the imports whose origin died (lost in transit). Attribution is by
  // origin cell, which is also where failover injects retries.
  auto& orphan_items = orphan_scratch_;
  if (have_faults) {
    for (auto& items : orphan_items) items.clear();
    const auto cell = [K](int i, int k) {
      return static_cast<std::size_t>(i) * static_cast<std::size_t>(K) +
             static_cast<std::size_t>(k);
    };
    for (int k = 0; k < K; ++k) {
      auto& input = inputs_[static_cast<std::size_t>(k)];
      if (!is_up(k)) {
        for (const auto& item : input.stream) {
          orphan_items[cell(item.app, item.origin)].push_back(item);
        }
        input.stream.clear();
        for (const auto& item : input.planned_drops) {
          orphan_items[cell(item.app, item.origin)].push_back(item);
        }
        input.planned_drops.clear();
        continue;
      }
      // Live edge: strip imports from dead origins out of the stream.
      auto dead_origin = [&](const ServeItem& item) {
        return !is_up(item.origin);
      };
      auto it = std::stable_partition(
          input.stream.begin(), input.stream.end(),
          [&](const ServeItem& item) { return !dead_origin(item); });
      for (auto lost = it; lost != input.stream.end(); ++lost) {
        orphan_items[cell(lost->app, lost->origin)].push_back(*lost);
      }
      input.stream.erase(it, input.stream.end());
    }
  }

  // Execute the live edges concurrently, each into its own shard; outcomes
  // merge deterministically below. Down edges execute nothing this slot.
  // inputs_ is not touched again until every future has completed.
  std::vector<std::future<void>> futures(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    if (!is_up(k)) continue;
    const double straggler =
        have_faults ? config_.fault_plan.straggler_factor(k, t) : 1.0;
    futures[static_cast<std::size_t>(k)] =
        pool_.submit([this, k, t, &result, straggler] {
          execute_edge(k, result.decision, t,
                       inputs_[static_cast<std::size_t>(k)].stream, straggler);
        });
  }

  result.feedback.slot = t;
  result.feedback.busy_s.resize(static_cast<std::size_t>(K), 0.0);
  double slot_loss = 0.0;

  // Serving-path outcome tallies feeding the guard's breakers and ladder.
  util::Grid2<guard::GuardController::CellStats> guard_cells;
  std::vector<std::int64_t> app_demand;
  std::vector<std::int64_t> app_shed;
  if (guard_.has_value()) {
    guard_cells = util::Grid2<guard::GuardController::CellStats>(I, K);
    app_demand.assign(static_cast<std::size_t>(I), 0);
    app_shed.assign(static_cast<std::size_t>(I), 0);
    for (int i = 0; i < I; ++i) {
      for (int k = 0; k < K; ++k) {
        app_demand[static_cast<std::size_t>(i)] += state.demand(i, k);
      }
    }
  }
  for (int k = 0; k < K; ++k) {
    if (have_faults && metrics != nullptr) {
      metrics->record_edge_slot(k, is_up(k));
    }
    if (!is_up(k)) continue;  // dead edge: zero busy, no energy, no samples
    futures[static_cast<std::size_t>(k)].get();
    const EdgeOutcome& outcome = shards_[static_cast<std::size_t>(k)].outcome;
    result.hot_allocs += outcome.hot_allocs;
    result.feedback.busy_s[static_cast<std::size_t>(k)] = outcome.busy_s;
    result.feedback.observations.insert(result.feedback.observations.end(),
                                        outcome.observations.begin(),
                                        outcome.observations.end());
    for (std::size_t r = 0; r < outcome.seals.size(); ++r) {
      result.seals[r] += outcome.seals[r];
      if (metrics != nullptr && outcome.seals[r] > 0) {
        metrics->record_batch_seals(static_cast<int>(r), outcome.seals[r]);
      }
    }
    slot_loss += outcome.loss;
    for (const auto& record : outcome.records) {
      switch (record.outcome) {
        case Outcome::kServed:
          ++result.served;
          if (!record.met_slo) ++result.slo_failures;
          if (metrics != nullptr) {
            metrics->record_request(record.sojourn_s() / tau, record.met_slo);
            metrics->record_request_waits(record.queue_wait_s() / tau,
                                          record.dispatch_wait_s() / tau,
                                          record.exec_s() / tau);
            metrics->record_admit_to_launch(
                (record.start_s - record.item.available_s) / tau);
          }
          break;
        case Outcome::kQueueDrop:
          ++result.queue_drops;
          ++result.slo_failures;
          slot_loss += cluster_.zoo().worst_loss(record.item.app);
          if (metrics != nullptr) metrics->record_queue_drop();
          break;
        case Outcome::kPlannedDrop:
          ++result.planned_drops;
          ++result.slo_failures;
          slot_loss += cluster_.zoo().worst_loss(record.item.app);
          if (metrics != nullptr) metrics->record_dropped();
          break;
        case Outcome::kDeadlineShed:
          ++result.deadline_sheds;
          ++result.slo_failures;
          slot_loss += cluster_.zoo().worst_loss(record.item.app);
          if (metrics != nullptr) metrics->record_deadline_shed();
          break;
        case Outcome::kOrphaned:
          // Orphans are resolved below from orphan_items, never inside
          // execute_edge.
          break;
      }
      // Breaker food: serving-path verdicts only (served / backpressure /
      // deadline shed). Planned drops are the scheduler's doing, not the
      // serving edge's, and feed the ladder's shed signal instead.
      if (guard_.has_value() && (record.outcome == Outcome::kServed ||
                                 record.outcome == Outcome::kQueueDrop ||
                                 record.outcome == Outcome::kDeadlineShed)) {
        auto& cell_stats = guard_cells(record.item.app, k);
        ++cell_stats.total;
        if (record.outcome != Outcome::kServed || !record.met_slo) {
          ++cell_stats.failed;
        }
        if (record.outcome == Outcome::kDeadlineShed) {
          ++app_shed[static_cast<std::size_t>(record.item.app)];
        }
      }
    }
    if (metrics != nullptr) {
      metrics->record_edge_busy(outcome.busy_s / tau);
      metrics->record_energy(
          cluster_.device(k).slot_energy_j(outcome.busy_s, tau));
      metrics->merge_queue_depth(outcome.depth_stats);
    }
    if (config_.keep_records) {
      result.records.insert(result.records.end(), outcome.records.begin(),
                            outcome.records.end());
    }
  }

  // Requests the decision shed at their origin (never routed anywhere).
  for (int k = 0; k < K; ++k) {
    for (const auto& item : inputs_[static_cast<std::size_t>(k)].planned_drops) {
      ++result.planned_drops;
      ++result.slo_failures;
      slot_loss += cluster_.zoo().worst_loss(item.app);
      if (metrics != nullptr) metrics->record_dropped();
      if (config_.keep_records) {
        RequestRecord record;
        record.item = item;
        record.outcome = Outcome::kPlannedDrop;
        result.records.push_back(record);
      }
    }
  }

  // Resolve orphans: the failover policy splits each origin cell's losses
  // into retries (vanish here, reappear as synthetic arrivals next slot) and
  // terminal drops (worst-model loss + SLO failure). The oldest requests get
  // the retry slots.
  if (have_faults) {
    for (int i = 0; i < I; ++i) {
      const double worst = cluster_.zoo().worst_loss(i);
      for (int k = 0; k < K; ++k) {
        auto& items = orphan_items[static_cast<std::size_t>(i) *
                                       static_cast<std::size_t>(K) +
                                   static_cast<std::size_t>(k)];
        if (items.empty()) continue;
        std::sort(items.begin(), items.end(),
                  [](const ServeItem& a, const ServeItem& b) {
                    return a.seq < b.seq;
                  });
        const auto outcome = failover_.on_orphans(
            i, k, static_cast<std::int64_t>(items.size()));
        result.retried += outcome.retried;
        if (metrics != nullptr) metrics->record_retries(outcome.retried);
        for (std::size_t r = static_cast<std::size_t>(outcome.retried);
             r < items.size(); ++r) {
          ++result.orphaned;
          ++result.slo_failures;
          slot_loss += worst;
          if (metrics != nullptr) metrics->record_orphan_drop();
          if (config_.keep_records) {
            RequestRecord record;
            record.item = items[r];
            record.outcome = Outcome::kOrphaned;
            result.records.push_back(record);
          }
        }
      }
    }
  }
  // Slot-boundary guard bookkeeping: breakers fold this slot's outcomes
  // into their windows, the ladder reacts to shed pressure and open
  // breakers; transitions land in the metrics.
  if (guard_.has_value()) {
    const auto summary = guard_->end_slot(guard_cells, app_demand, app_shed);
    if (metrics != nullptr) {
      metrics->record_breaker_events(summary.trips, summary.reopens,
                                     summary.probes, summary.recoveries);
      metrics->record_degradation(summary.degraded_apps, summary.max_level);
    }
  }

  result.slot_loss = slot_loss;
  if (metrics != nullptr) metrics->record_slot_loss(slot_loss);

  scheduler.observe(result.feedback);
  previous_ = result.decision;
  ++slot_;
  return result;
}

metrics::RunMetrics ServeEngine::run(sim::Scheduler& scheduler, int max_slots) {
  const int horizon = max_slots > 0 ? std::min(max_slots, trace_.slots())
                                    : trace_.slots();
  metrics::RunMetrics metrics(horizon);
  while (slot_ < horizon) step(scheduler, &metrics);
  // Flush failover: orphans still awaiting re-admission at the horizon are
  // terminal losses.
  for (std::int64_t d = failover_.drain_pending(); d > 0; --d) {
    metrics.record_orphan_drop();
  }
  metrics.set_solver_fallbacks(scheduler.fallback_count());
  return metrics;
}

}  // namespace birp::serve
