#include "birp/serve/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "birp/guard/sojourn.hpp"
#include "birp/util/check.hpp"

namespace birp::serve {

void validate(const AdaptiveBatcherConfig& config) {
  util::check(config.slack > 0.0, "adaptive config: slack must be > 0");
  util::check(config.max_batch >= 1, "adaptive config: max_batch must be >= 1");
  util::check(config.marginal_batch_cost >= 0.0,
              "adaptive config: marginal batch cost must be >= 0");
}

AdaptiveBatcher::AdaptiveBatcher(
    const device::ClusterSpec& cluster, AdaptiveBatcherConfig config,
    std::shared_ptr<const predictor::LatencyPredictor> predictor)
    : config_(config),
      apps_(cluster.num_apps()),
      devices_(cluster.num_devices()),
      max_variants_(cluster.zoo().max_variants()) {
  validate(config_);
  // The validator never lets a kernel exceed kMaxKernelBatch, so neither
  // may a grown launch — the TIR belief is only calibrated up to there.
  config_.max_batch = std::min(config_.max_batch, sim::kMaxKernelBatch);
  gamma_s_.assign(static_cast<std::size_t>(apps_) *
                      static_cast<std::size_t>(devices_) *
                      static_cast<std::size_t>(max_variants_),
                  0.0);
  for (int k = 0; k < devices_; ++k) {
    for (int i = 0; i < apps_; ++i) {
      const int J = cluster.zoo().num_variants(i);
      for (int j = 0; j < J; ++j) {
        gamma_s_[gamma_index(k, i, j)] =
            predictor ? predictor->predict_gamma_s(k, i, j)
                      : cluster.gamma_s(k, i, j);
      }
    }
  }
  slo_s_.resize(static_cast<std::size_t>(apps_));
  for (int i = 0; i < apps_; ++i) {
    slo_s_[static_cast<std::size_t>(i)] =
        cluster.zoo().app(i).slo_fraction * cluster.tau_s();
  }
}

double AdaptiveBatcher::predicted_latency_s(int edge, int app, int variant,
                                            int b) const {
  return guard::batch_latency_s(gamma_s_[gamma_index(edge, app, variant)],
                                config_.marginal_batch_cost, b);
}

int AdaptiveBatcher::effective_target(int prior,
                                      std::int64_t backlog) const {
  const int base = std::max(1, prior);
  if (!config_.enabled) return base;
  int target = base;
  if (config_.growth_backlog_factor > 0.0 &&
      static_cast<double>(backlog) >=
          config_.growth_backlog_factor * static_cast<double>(base)) {
    target = static_cast<int>(std::min<std::int64_t>(
        backlog, static_cast<std::int64_t>(config_.max_batch)));
  }
  return std::clamp(std::max(target, base), 1, config_.max_batch);
}

BatchPlan AdaptiveBatcher::plan(int edge, int app, int variant,
                                std::span<const ServeItem> candidates,
                                int prior, int need, double cursor_s,
                                double max_wait_s, bool more_may_arrive,
                                std::vector<double>* avail_scratch) const {
  util::check(!candidates.empty(), "AdaptiveBatcher: no candidates");
  util::check(need >= 1, "AdaptiveBatcher: need at least one member");
  util::check(candidates.size() <= static_cast<std::size_t>(need),
              "AdaptiveBatcher: more candidates than the launch target");

  std::vector<double> local_avails;
  std::vector<double>& avails =
      avail_scratch != nullptr ? *avail_scratch : local_avails;
  avails.clear();
  avails.reserve(candidates.size());
  for (const auto& item : candidates) avails.push_back(item.available_s);

  // The fill-to-target rule is always the starting point: with the feature
  // disabled it IS the plan (byte-identical delegation), enabled it is the
  // "wait" alternative the adaptive rules improve on.
  const BatchSeal base =
      seal_batch(avails, need, cursor_s, max_wait_s, more_may_arrive);
  BatchPlan plan;
  plan.seal = base;
  plan.target = need;
  if (base.timed_out) {
    plan.reason = SealReason::kTimeout;
  } else if (base.count == need) {
    plan.reason = need > std::max(1, prior) ? SealReason::kGrowth
                                            : SealReason::kFull;
  } else {
    plan.reason = SealReason::kExhausted;
  }
  if (!config_.enabled) return plan;  // seal_batch verbatim

  const double slo = slo_s_[static_cast<std::size_t>(app)];
  const auto deadline_of = [&](std::size_t r) {
    return candidates[r].arrival_s + config_.slack * slo;
  };
  const double oldest_deadline = deadline_of(0);
  const auto latency_of = [&](int m) {
    return predicted_latency_s(edge, app, variant, m);
  };
  // Sealing m members right now: the launch starts once the accelerator is
  // free and the m-th member is available (members are availability-sorted).
  const auto start_of = [&](int m) {
    return std::max(cursor_s, avails[static_cast<std::size_t>(m - 1)]);
  };
  const auto completion_of = [&](int m) { return start_of(m) + latency_of(m); };
  // Goodput-under-SLO utility of sealing m members now: predicted members
  // meeting their own deadline per second of believed accelerator time.
  const auto utility_of = [&](int m) {
    const double done = completion_of(m);
    int meets = 0;
    for (int r = 0; r < m; ++r) {
      if (done <= deadline_of(static_cast<std::size_t>(r))) ++meets;
    }
    return static_cast<double>(meets) / latency_of(m);
  };
  // Best immediate seal among 1..limit. Counts meeting the oldest member's
  // deadline are preferred whenever any exists — the deadline invariant: a
  // viable smaller seal is never passed over for a doomed larger one. Ties
  // break toward the larger count (throughput).
  const auto choose = [&](int limit, bool feasible_only) {
    int best = 0;
    double best_utility = 0.0;
    bool best_feasible = false;
    for (int m = 1; m <= limit; ++m) {
      const bool feasible = completion_of(m) <= oldest_deadline;
      if (feasible_only && !feasible) continue;
      const double utility = utility_of(m);
      const bool wins = best == 0 || (feasible && !best_feasible) ||
                        (feasible == best_feasible && utility >= best_utility);
      if (wins) {
        best = m;
        best_utility = utility;
        best_feasible = feasible;
      }
    }
    return best;
  };
  const auto seal_now = [&](int m, SealReason reason) {
    plan.seal.count = m;
    plan.seal.formation_end_s = avails[static_cast<std::size_t>(m - 1)];
    plan.seal.start_s = start_of(m);
    plan.seal.timed_out = false;
    plan.reason = reason;
    plan.predicted_completion_s = completion_of(m);
  };

  if (!base.timed_out) {
    // Seal-now path: the target is full (or nothing more can arrive). The
    // utility may still prefer launching fewer members when the full batch
    // would blow early members' deadlines.
    const int best = choose(base.count, /*feasible_only=*/false);
    if (best > 0 && best < base.count) {
      seal_now(best, SealReason::kUtility);
    } else {
      plan.predicted_completion_s = completion_of(base.count);
    }
    return plan;
  }

  // Timeout path: the fill-to-target rule would hold the launch until
  // oldest + max_wait hoping for more members. Predict that outcome with
  // the members actually held (a lower bound — more members only lengthen
  // the believed launch); when even it breaches the oldest deadline and an
  // immediate seal meets it, launch now instead of waiting.
  const double wait_completion = base.start_s + latency_of(base.count);
  plan.predicted_completion_s = wait_completion;
  if (wait_completion > oldest_deadline) {
    const int best = choose(base.count, /*feasible_only=*/true);
    if (best > 0) seal_now(best, SealReason::kDeadline);
  }
  return plan;
}

}  // namespace birp::serve
