#include "birp/serve/legacy_queue.hpp"

#include <algorithm>

#include "birp/util/check.hpp"

namespace birp::serve {

LegacyAdmissionQueue::LegacyAdmissionQueue(int apps,
                                           std::vector<ServeItem> stream,
                                           std::int64_t capacity,
                                           QueuePolicy policy,
                                           LegacyAdmissionGate gate)
    : apps_(apps),
      stream_(std::move(stream)),
      upstream_(static_cast<std::size_t>(apps), 0),
      capacity_(capacity),
      policy_(policy),
      gate_(std::move(gate)),
      fifos_(static_cast<std::size_t>(apps)) {
  util::check(apps > 0, "LegacyAdmissionQueue: need at least one app");
  for (const auto& item : stream_) {
    util::check(item.app >= 0 && item.app < apps_,
                "LegacyAdmissionQueue: item app out of range");
    ++upstream_[static_cast<std::size_t>(item.app)];
  }
}

void LegacyAdmissionQueue::admit_next() {
  util::check(next_ < stream_.size(),
              "LegacyAdmissionQueue: stream exhausted");
  const ServeItem item = stream_[next_++];
  --upstream_[static_cast<std::size_t>(item.app)];

  while (!departures_.empty() &&
         departures_.top().first <= item.available_s) {
    depth_ -= departures_.top().second;
    departures_.pop();
  }

  if (gate_ &&
      !gate_(item, static_cast<std::int64_t>(
                       fifos_[static_cast<std::size_t>(item.app)].size()))) {
    deadline_shed_.push_back(item);
    sample_depth();
    return;
  }

  if (capacity_ > 0 && depth_ >= capacity_) {
    if (policy_ == QueuePolicy::kEvictOldest) {
      int victim_app = -1;
      for (int a = 0; a < apps_; ++a) {
        const auto& fifo = fifos_[static_cast<std::size_t>(a)];
        if (fifo.empty()) continue;
        if (victim_app < 0 ||
            fifo.front().available_s <
                fifos_[static_cast<std::size_t>(victim_app)]
                    .front()
                    .available_s) {
          victim_app = a;
        }
      }
      if (victim_app >= 0) {
        auto& fifo = fifos_[static_cast<std::size_t>(victim_app)];
        dropped_.push_back(fifo.front());
        fifo.pop_front();
        --depth_;
      } else {
        dropped_.push_back(item);
        sample_depth();
        return;
      }
    } else {
      dropped_.push_back(item);
      sample_depth();
      return;
    }
  }

  fifos_[static_cast<std::size_t>(item.app)].push_back(item);
  ++depth_;
  sample_depth();
}

void LegacyAdmissionQueue::fill(int app, std::size_t want) {
  const std::scoped_lock lock(mutex_);
  auto& fifo = fifos_[static_cast<std::size_t>(app)];
  while (fifo.size() < want && upstream_[static_cast<std::size_t>(app)] > 0) {
    admit_next();
  }
}

void LegacyAdmissionQueue::fill_until(int app, std::size_t want,
                                      double threshold_s) {
  const std::scoped_lock lock(mutex_);
  auto& fifo = fifos_[static_cast<std::size_t>(app)];
  while (fifo.size() < want && upstream_[static_cast<std::size_t>(app)] > 0 &&
         next_ < stream_.size() &&
         stream_[next_].available_s <= threshold_s) {
    admit_next();
  }
}

bool LegacyAdmissionQueue::exhausted(int app) const {
  const std::scoped_lock lock(mutex_);
  return fifos_[static_cast<std::size_t>(app)].empty() &&
         upstream_[static_cast<std::size_t>(app)] == 0;
}

std::int64_t LegacyAdmissionQueue::upstream(int app) const {
  const std::scoped_lock lock(mutex_);
  return upstream_[static_cast<std::size_t>(app)];
}

std::vector<ServeItem> LegacyAdmissionQueue::waiting_snapshot(int app) const {
  const std::scoped_lock lock(mutex_);
  const auto& fifo = fifos_[static_cast<std::size_t>(app)];
  return {fifo.begin(), fifo.end()};
}

std::size_t LegacyAdmissionQueue::waiting_size(int app) const {
  const std::scoped_lock lock(mutex_);
  return fifos_[static_cast<std::size_t>(app)].size();
}

std::vector<ServeItem> LegacyAdmissionQueue::take(int app, std::size_t count) {
  const std::scoped_lock lock(mutex_);
  auto& fifo = fifos_[static_cast<std::size_t>(app)];
  util::check(count <= fifo.size(),
              "LegacyAdmissionQueue: take beyond waiting");
  std::vector<ServeItem> taken(
      fifo.begin(), fifo.begin() + static_cast<std::ptrdiff_t>(count));
  fifo.erase(fifo.begin(), fifo.begin() + static_cast<std::ptrdiff_t>(count));
  return taken;
}

void LegacyAdmissionQueue::on_dispatch(double start_s, std::size_t count) {
  const std::scoped_lock lock(mutex_);
  if (count == 0) return;
  departures_.emplace(start_s, static_cast<std::int64_t>(count));
}

std::vector<ServeItem> LegacyAdmissionQueue::dropped_snapshot() const {
  const std::scoped_lock lock(mutex_);
  return dropped_;
}

std::vector<ServeItem> LegacyAdmissionQueue::deadline_shed_snapshot() const {
  const std::scoped_lock lock(mutex_);
  return deadline_shed_;
}

util::RunningStats LegacyAdmissionQueue::depth_stats_snapshot() const {
  const std::scoped_lock lock(mutex_);
  return depth_stats_;
}

std::int64_t LegacyAdmissionQueue::depth() const {
  const std::scoped_lock lock(mutex_);
  return depth_;
}

void LegacyAdmissionQueue::settle_departures() {
  while (!departures_.empty()) {
    depth_ -= departures_.top().second;
    departures_.pop();
  }
  util::check(depth_ >= 0,
              "LegacyAdmissionQueue: departures exceed admissions");
}

std::vector<ServeItem> LegacyAdmissionQueue::drain_unprocessed() {
  const std::scoped_lock lock(mutex_);
  settle_departures();
  std::vector<ServeItem> rest(stream_.begin() +
                                  static_cast<std::ptrdiff_t>(next_),
                              stream_.end());
  for (const auto& item : rest) {
    --upstream_[static_cast<std::size_t>(item.app)];
  }
  next_ = stream_.size();
  return rest;
}

std::vector<ServeItem> LegacyAdmissionQueue::drain_waiting() {
  const std::scoped_lock lock(mutex_);
  settle_departures();
  std::vector<ServeItem> rest;
  for (auto& fifo : fifos_) {
    rest.insert(rest.end(), fifo.begin(), fifo.end());
    depth_ -= static_cast<std::int64_t>(fifo.size());
    fifo.clear();
  }
  util::check(depth_ == 0,
              "LegacyAdmissionQueue: depth inconsistent after drain");
  return rest;
}

}  // namespace birp::serve
