#include "birp/serve/batcher.hpp"

#include <algorithm>
#include <limits>

#include "birp/util/check.hpp"

namespace birp::serve {

BatchSeal seal_batch(std::span<const double> avails, int need, double cursor_s,
                     double max_wait_s, bool more_may_arrive) {
  util::check(!avails.empty(), "seal_batch: no candidates");
  util::check(need >= 1, "seal_batch: need at least one member");

  const double deadline =
      max_wait_s < 0.0 ? std::numeric_limits<double>::infinity()
                       : avails.front() + max_wait_s;
  // Requests ready before the accelerator frees OR before the timeout fires
  // can all still join the batch.
  const double threshold = std::max(cursor_s, deadline);

  const auto considered =
      std::min<std::size_t>(avails.size(), static_cast<std::size_t>(need));
  std::size_t sealed = 0;
  while (sealed < considered && avails[sealed] <= threshold) ++sealed;
  util::check(sealed >= 1, "seal_batch: first candidate beyond threshold");

  BatchSeal seal;
  seal.count = static_cast<int>(sealed);
  const double last_avail = avails[sealed - 1];
  if (sealed == static_cast<std::size_t>(need) || !more_may_arrive) {
    // Full batch, or nothing else will ever come: go as soon as possible.
    seal.formation_end_s = last_avail;
    seal.start_s = std::max(cursor_s, last_avail);
  } else {
    // Partial batch sealed by the timeout: the assembler holds the launch
    // until the deadline hoping for more members.
    seal.timed_out = true;
    seal.start_s = std::max(cursor_s, deadline);
    seal.formation_end_s =
        std::max(last_avail, std::min(deadline, seal.start_s));
  }
  return seal;
}

}  // namespace birp::serve
