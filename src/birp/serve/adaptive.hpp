// SLO-aware adaptive batch assembly (ROADMAP item 1, the BCEdge direction).
//
// The slot MILP fixes one batch size per (app, edge) per slot, and
// seal_batch just fills to it — between slot boundaries the engine can
// neither seal early under deadline pressure nor grow under backlog. The
// AdaptiveBatcher treats the MILP decision as a per-slot *prior* instead of
// a hard rule:
//
//   * grow — when the per-app backlog (buffered + upstream requests) is at
//     least growth_backlog_factor times the prior, the launch target grows
//     toward the backlog, up to max_batch, so bursts drain in fewer, more
//     TIR-efficient launches;
//   * seal early — when the predicted completion of the held batch (the
//     timeout rule's launch point plus the believed batch latency, the same
//     sojourn model birp/guard's admission gate uses via guard/sojourn.hpp)
//     would breach the oldest buffered request's deadline, and some
//     immediate seal meets it, the batch launches now instead of waiting;
//   * utility seal — among the member counts available right now, plan()
//     picks the count maximizing goodput-under-SLO: predicted members
//     meeting their deadline per second of believed accelerator time,
//     restricted to counts that meet the oldest member's deadline whenever
//     any count does (so a smaller viable seal is never passed over for a
//     doomed larger one — the property-tested deadline invariant).
//
// With the feature disabled plan() delegates to seal_batch verbatim, so the
// engine stays byte-identical to the fill-to-target rule (property-tested
// in tests/property_test.cpp).
#pragma once

#include <memory>
#include <span>

#include "birp/device/cluster.hpp"
#include "birp/predictor/latency_predictor.hpp"
#include "birp/serve/batcher.hpp"
#include "birp/serve/request.hpp"
#include "birp/sim/validate.hpp"

namespace birp::serve {

/// Why a batch sealed; recorded per launch into RunMetrics so the seal-rule
/// mix is observable (bench_serve prints the distribution).
enum class SealReason : int {
  kFull = 0,     ///< reached the launch target (fill-to-target)
  kTimeout,      ///< partial batch sealed by the max-wait timeout
  kExhausted,    ///< request stream exhausted; launched immediately
  kDeadline,     ///< sealed early: waiting would breach the oldest deadline
  kGrowth,       ///< sealed at a target grown beyond the MILP prior
  kUtility,      ///< sealed smaller than available by the goodput utility
};
inline constexpr int kNumSealReasons = 6;

struct AdaptiveBatcherConfig {
  /// Off by default: plan() delegates to seal_batch and the serving engine
  /// is byte-identical to the fill-to-target build.
  bool enabled = false;
  /// Deadline budget multiplier: a request's deadline is slack * slo.
  /// > 1 tolerates prediction error, < 1 seals more aggressively.
  double slack = 1.0;
  /// Grow the launch target beyond the MILP prior when the per-app backlog
  /// is at least this multiple of the prior. <= 0 disables growth.
  double growth_backlog_factor = 1.5;
  /// Hard cap on any launch; growth never exceeds it and the engine clamps
  /// it to sim::kMaxKernelBatch (the validator's kernel cap).
  int max_batch = sim::kMaxKernelBatch;
  /// Believed marginal cost of a follower request inside a batch, as a
  /// fraction of the serial latency gamma (guard/sojourn.hpp's curve).
  double marginal_batch_cost = 0.4;
};

/// Fails fast (util::check) on out-of-range values: non-positive slack or
/// cap, negative marginal cost. Called by the batcher and by ServeEngine's
/// config validation.
void validate(const AdaptiveBatcherConfig& config);

/// One planned launch: the seal itself plus why and what it aimed at.
struct BatchPlan {
  BatchSeal seal;
  SealReason reason = SealReason::kFull;
  /// Effective launch target the plan aimed at (prior, possibly grown).
  int target = 0;
  /// Predicted completion of the sealed launch under the believed latency
  /// curve (launch start + batch latency); what the deadline invariant is
  /// stated against. 0 when the batcher is disabled.
  double predicted_completion_s = 0.0;
};

class AdaptiveBatcher {
 public:
  /// `predictor` supplies believed serial latencies (the nn-Meter role);
  /// null falls back to the cluster's exact gamma table. Shared with the
  /// guard layer's admission gate in ServeEngine.
  AdaptiveBatcher(
      const device::ClusterSpec& cluster, AdaptiveBatcherConfig config,
      std::shared_ptr<const predictor::LatencyPredictor> predictor = nullptr);

  [[nodiscard]] const AdaptiveBatcherConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }

  /// Believed latency of a launch of `b` members of (app, variant) on
  /// `edge`: gamma * (1 + marginal_batch_cost * (b - 1)).
  [[nodiscard]] double predicted_latency_s(int edge, int app, int variant,
                                           int b) const;

  /// Effective launch target for one job: the MILP prior `prior`, grown
  /// toward `backlog` when the backlog threshold is met, clamped to
  /// [1, max_batch]. Returns max(1, prior) when disabled.
  [[nodiscard]] int effective_target(int prior, std::int64_t backlog) const;

  /// Plans the next launch of one job on `edge`.
  ///   candidates      buffered requests of the job's app, oldest first —
  ///                   exactly the first min(waiting, need) queue entries
  ///                   (sorted by available_s; a prefix take preserves FIFO)
  ///   prior           the MILP decision's kernel size (pre-growth)
  ///   need            launch target: min(requests left, effective target)
  ///   cursor_s        time the accelerator becomes free
  ///   max_wait_s      partial-batch timeout; negative = wait for full
  ///   more_may_arrive false when the job's request stream is exhausted
  ///   avail_scratch   optional reusable buffer for the member-availability
  ///                   working set; hot-path callers pass a persistent
  ///                   vector so plan() allocates nothing in steady state
  /// Disabled: the returned seal is seal_batch's, field for field.
  [[nodiscard]] BatchPlan plan(int edge, int app, int variant,
                               std::span<const ServeItem> candidates,
                               int prior, int need, double cursor_s,
                               double max_wait_s, bool more_may_arrive,
                               std::vector<double>* avail_scratch =
                                   nullptr) const;

 private:
  [[nodiscard]] std::size_t gamma_index(int edge, int app, int variant) const {
    return (static_cast<std::size_t>(edge) * static_cast<std::size_t>(apps_) +
            static_cast<std::size_t>(app)) *
               static_cast<std::size_t>(max_variants_) +
           static_cast<std::size_t>(variant);
  }

  AdaptiveBatcherConfig config_;
  int apps_ = 0;
  int devices_ = 0;
  int max_variants_ = 0;
  std::vector<double> gamma_s_;  ///< believed gamma per (k, i, j)
  std::vector<double> slo_s_;    ///< SLO budget per app (seconds)
};

}  // namespace birp::serve
