// Lightweight precondition / invariant checking.
//
// BIRP is a simulation and optimization library: a violated precondition is a
// programming error, never a recoverable runtime condition, so checks throw
// std::logic_error and are kept on in all build types (they guard cold paths:
// configuration, problem construction, decision validation).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace birp::util {

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* message,
                                             const std::source_location& loc) {
  throw std::logic_error(std::string(loc.file_name()) + ":" +
                         std::to_string(loc.line()) + ": " + message);
}

}  // namespace detail

/// Throws std::logic_error with `message` (and call-site info) when
/// `condition` is false. Use for API preconditions and internal invariants.
///
/// The message is a `const char*` on purpose: checks sit on hot paths (queue
/// admissions, decision accessors), and a `const std::string&` parameter
/// would heap-allocate a temporary from the literal on every call even when
/// the condition holds. With this overload the string is built only inside
/// the throw.
inline void check(bool condition, const char* message,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) [[unlikely]] {
    detail::throw_check_failure(message, loc);
  }
}

/// Overload for composed messages (callers that format context into the
/// string). Literal messages bind to the `const char*` overload above.
inline void check(bool condition, const std::string& message,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) [[unlikely]] {
    detail::throw_check_failure(message.c_str(), loc);
  }
}

/// Unconditional failure, for unreachable branches.
[[noreturn]] inline void fail(
    const char* message,
    std::source_location loc = std::source_location::current()) {
  detail::throw_check_failure(message, loc);
}

[[noreturn]] inline void fail(
    const std::string& message,
    std::source_location loc = std::source_location::current()) {
  detail::throw_check_failure(message.c_str(), loc);
}

}  // namespace birp::util
