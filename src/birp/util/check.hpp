// Lightweight precondition / invariant checking.
//
// BIRP is a simulation and optimization library: a violated precondition is a
// programming error, never a recoverable runtime condition, so checks throw
// std::logic_error and are kept on in all build types (they guard cold paths:
// configuration, problem construction, decision validation).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace birp::util {

/// Throws std::logic_error with `message` (and call-site info) when
/// `condition` is false. Use for API preconditions and internal invariants.
inline void check(bool condition, const std::string& message,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw std::logic_error(std::string(loc.file_name()) + ":" +
                           std::to_string(loc.line()) + ": " + message);
  }
}

/// Unconditional failure, for unreachable branches.
[[noreturn]] inline void fail(
    const std::string& message,
    std::source_location loc = std::source_location::current()) {
  throw std::logic_error(std::string(loc.file_name()) + ":" +
                         std::to_string(loc.line()) + ": " + message);
}

}  // namespace birp::util
