#include "birp/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "birp/util/check.hpp"

namespace birp::util {

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::min() const noexcept { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const noexcept { return count_ == 0 ? 0.0 : max_; }

double percentile_sorted(std::span<const double> sorted, double q) {
  check(!sorted.empty(), "percentile of empty range");
  check(q >= 0.0 && q <= 1.0, "percentile quantile must be in [0,1]");
  if (sorted.size() == 1) return sorted.front();
  // Endpoints exactly: pos arithmetic at q = 1 can land a hair below n-1
  // and interpolate the max against itself with a rounding wobble.
  if (q == 0.0) return sorted.front();
  if (q == 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(pos);
  const std::size_t upper = std::min(lower + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lower);
  return sorted[lower] * (1.0 - frac) + sorted[upper] * frac;
}

double percentile(std::span<const double> values, double q) {
  check(!values.empty(), "percentile of empty range");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

std::vector<double> percentiles(std::span<const double> values,
                                std::span<const double> qs) {
  check(!values.empty(), "percentile of empty range");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> result;
  result.reserve(qs.size());
  for (const double q : qs) result.push_back(percentile_sorted(sorted, q));
  return result;
}

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (const double v : values) total += v;
  return total / static_cast<double>(values.size());
}

LinearFit least_squares(std::span<const double> x, std::span<const double> y) {
  check(x.size() == y.size(), "least_squares: size mismatch");
  check(x.size() >= 2, "least_squares: need at least two points");
  const double mx = mean(x);
  const double my = mean(y);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  check(sxx > 0.0, "least_squares: x values are all identical");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double sse_against_constant(std::span<const double> y, double c) noexcept {
  double sse = 0.0;
  for (const double v : y) {
    const double d = v - c;
    sse += d * d;
  }
  return sse;
}

}  // namespace birp::util
