// Minimal CSV emission/parsing for experiment artifacts and trace files.
//
// Supports quoted fields with embedded commas/quotes/newlines — sufficient
// for round-tripping the workload traces and benchmark outputs this repo
// produces (not a general RFC 4180 implementation of exotic inputs).
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace birp::util {

/// Streams rows of a CSV document to an std::ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one row; fields are quoted only when necessary.
  void row(std::initializer_list<std::string_view> fields);
  void row(const std::vector<std::string>& fields);

  /// Convenience for numeric rows: formatted with max_digits10 precision.
  void numeric_row(std::initializer_list<double> values);

 private:
  void write_field(std::string_view field, bool first);
  std::ostream* out_;
};

/// Parses a full CSV document into rows of fields. Handles quoted fields,
/// escaped quotes ("") and both \n and \r\n terminators. The final row may
/// omit the trailing newline.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(
    std::string_view text);

/// Formats a double with enough digits to round-trip.
[[nodiscard]] std::string format_double(double value);

}  // namespace birp::util
