#include "birp/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "birp/util/check.hpp"

namespace birp::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  check(!header_.empty(), "TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  check(row.size() == header_.size(), "TextTable: row width mismatch");
  rows_.push_back(std::move(row));
}

void TextTable::add_numeric_row(const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (const double v : values) row.push_back(fixed(v, precision));
  add_row(std::move(row));
}

void TextTable::print(std::ostream& out, const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_separator = [&] {
    out << '+';
    for (const auto w : widths) {
      out << std::string(w + 2, '-') << '+';
    }
    out << '\n';
  };
  const auto print_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
          << row[c] << " |";
    }
    out << '\n';
  };

  if (!title.empty()) out << title << '\n';
  print_separator();
  print_row(header_);
  print_separator();
  for (const auto& row : rows_) print_row(row);
  print_separator();
}

std::string fixed(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

}  // namespace birp::util
