#include "birp/util/alloc_count.hpp"

#include <atomic>

namespace birp::util {
namespace detail {

thread_local std::int64_t tl_allocs = 0;
thread_local std::int64_t tl_frees = 0;
thread_local std::int64_t tl_bytes = 0;

namespace {
std::atomic<bool> counting_active{false};
}  // namespace

void set_counting_active() noexcept {
  counting_active.store(true, std::memory_order_relaxed);
}

}  // namespace detail

AllocCounts alloc_counts() noexcept {
  return AllocCounts{detail::tl_allocs, detail::tl_frees, detail::tl_bytes};
}

void reset_alloc_counts() noexcept {
  detail::tl_allocs = 0;
  detail::tl_frees = 0;
  detail::tl_bytes = 0;
}

bool alloc_counting_active() noexcept {
  return detail::counting_active.load(std::memory_order_relaxed);
}

}  // namespace birp::util
