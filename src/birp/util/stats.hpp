// Streaming and batch statistics used by the metrics layer and experiments.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace birp::util {

/// Numerically stable streaming mean/variance (Welford's algorithm) plus
/// min/max tracking. Suitable for long-running metric accumulation.
class RunningStats {
 public:
  /// Header-inline: add() sits on the serve hot path (one depth sample per
  /// admission decision), where the cross-TU call overhead was measurable.
  void add(double value) noexcept {
    if (count_ == 0) {
      min_ = value;
      max_ = value;
    } else {
      min_ = value < min_ ? value : min_;
      max_ = value > max_ ? value : max_;
    }
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
  }

  /// Merges another accumulator (parallel reduction support).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double sum() const noexcept { return mean() * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolated percentile of `values` (copied and sorted).
/// `q` in [0, 1]. Requires a non-empty input. q = 0 and q = 1 return the
/// exact minimum and maximum (no interpolation artifacts).
/// For repeated queries over the same data, sort once and use
/// percentile_sorted() or batch the quantiles through percentiles().
[[nodiscard]] double percentile(std::span<const double> values, double q);

/// percentile() over input that is already sorted ascending — no copy, no
/// re-sort. Precondition: `sorted` is non-empty and sorted.
[[nodiscard]] double percentile_sorted(std::span<const double> sorted,
                                       double q);

/// Multiple quantiles of `values` with a single copy + sort. Returns one
/// result per entry of `qs`, in order. Requires a non-empty input.
[[nodiscard]] std::vector<double> percentiles(std::span<const double> values,
                                              std::span<const double> qs);

/// Mean of `values`; 0 for empty input.
[[nodiscard]] double mean(std::span<const double> values) noexcept;

/// Ordinary least squares fit y = a + b*x. Returns {intercept, slope}.
/// Requires at least two points with distinct x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination of the fit.
  double r_squared = 0.0;
};
[[nodiscard]] LinearFit least_squares(std::span<const double> x,
                                      std::span<const double> y);

/// Sum of squared residuals of y against a constant `c`.
[[nodiscard]] double sse_against_constant(std::span<const double> y,
                                          double c) noexcept;

}  // namespace birp::util
