#include "birp/util/ecdf.hpp"

#include <algorithm>

#include "birp/util/check.hpp"
#include "birp/util/stats.hpp"

namespace birp::util {

void Ecdf::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void Ecdf::add_all(std::span<const double> samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
  sorted_ = false;
}

void Ecdf::merge(const Ecdf& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void Ecdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Ecdf::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Ecdf::tail_fraction(double x) const { return 1.0 - cdf(x); }

double Ecdf::quantile(double q) const {
  check(!samples_.empty(), "quantile of empty ECDF");
  ensure_sorted();
  // samples_ is sorted here; re-sorting through percentile() would copy the
  // whole sample set on every query.
  return percentile_sorted(samples_, q);
}

std::vector<Ecdf::Point> Ecdf::curve(double lo, double hi,
                                     std::size_t points) const {
  check(points >= 2, "ECDF curve needs at least two points");
  check(hi > lo, "ECDF curve range must be increasing");
  std::vector<Point> result;
  result.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    result.push_back({x, cdf(x)});
  }
  return result;
}

}  // namespace birp::util
