// Global operator new/delete replacement that counts into the thread-local
// counters of util/alloc_count.hpp. Compiled ONLY into targets that opt in
// (listed with ${BIRP_ALLOC_HOOK} in tests/CMakeLists.txt); without the
// BIRP_COUNT_ALLOCS definition this translation unit is intentionally
// empty, so accidentally listing it on a target changes nothing.
//
// Every replaceable form is provided so sized/aligned deletes never
// mismatch a hooked new (which would trip ASan's alloc-dealloc-mismatch
// checks). The underlying storage comes from malloc/free, which the
// sanitizers intercept as usual — the hook composes with ASan/TSan.
#ifdef BIRP_COUNT_ALLOCS

#include <cstdlib>
#include <new>

#include "birp/util/alloc_count.hpp"

namespace {

[[maybe_unused]] const bool hook_registered = [] {
  birp::util::detail::set_counting_active();
  return true;
}();

void* counted_alloc(std::size_t size) noexcept {
  birp::util::detail::note_alloc(size);
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) noexcept {
  birp::util::detail::note_alloc(size);
  const auto alignment = static_cast<std::size_t>(align);
  // aligned_alloc requires size % alignment == 0; round up.
  const std::size_t rounded =
      size == 0 ? alignment : (size + alignment - 1) / alignment * alignment;
  return std::aligned_alloc(alignment, rounded);
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, align)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, align)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, align);
}

void operator delete(void* p) noexcept {
  birp::util::detail::note_free();
  std::free(p);
}
void operator delete[](void* p) noexcept {
  birp::util::detail::note_free();
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  birp::util::detail::note_free();
  std::free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  birp::util::detail::note_free();
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  birp::util::detail::note_free();
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  birp::util::detail::note_free();
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  birp::util::detail::note_free();
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  birp::util::detail::note_free();
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  birp::util::detail::note_free();
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  birp::util::detail::note_free();
  std::free(p);
}

#endif  // BIRP_COUNT_ALLOCS
