// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components of the library (workload generation, execution
// noise, randomized rounding) draw from Xoshiro256StarStar seeded explicitly,
// so every table and figure in the evaluation is bit-reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace birp::util {

/// SplitMix64: used to expand a single 64-bit seed into a full Xoshiro state.
/// Satisfies UniformRandomBitGenerator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept;

 private:
  std::uint64_t state_;
};

/// Xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
/// Satisfies UniformRandomBitGenerator so it composes with <random>
/// distributions, but the members below provide branch-predictable helpers
/// that are deterministic across standard libraries (std::normal_distribution
/// et al. are not guaranteed to produce identical streams across platforms).
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Marsaglia polar method (deterministic given state).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Lognormal: exp(Normal(mu_log, sigma_log)).
  double lognormal(double mu_log, double sigma_log) noexcept;

  /// Poisson sample. Uses inversion for small means, PTRS-style rejection
  /// normal approximation for large means (adequate for workload synthesis).
  std::int64_t poisson(double mean) noexcept;

  /// Bernoulli trial with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Creates an independent generator for a parallel stream; mixes `stream`
  /// into the state so sibling streams do not overlap in practice.
  Xoshiro256StarStar fork(std::uint64_t stream) noexcept;

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace birp::util
