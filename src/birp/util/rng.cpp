#include "birp/util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace birp::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

SplitMix64::result_type SplitMix64::operator()() noexcept {
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) noexcept {
  SplitMix64 mixer(seed);
  for (auto& word : state_) word = mixer();
}

Xoshiro256StarStar::result_type Xoshiro256StarStar::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256StarStar::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256StarStar::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Xoshiro256StarStar::uniform_int(std::int64_t lo,
                                             std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Lemire-style rejection-free-ish bounded draw; modulo bias is negligible
  // for the span sizes used here but we reject to stay exact.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % span;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Xoshiro256StarStar::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Xoshiro256StarStar::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Xoshiro256StarStar::lognormal(double mu_log, double sigma_log) noexcept {
  return std::exp(normal(mu_log, sigma_log));
}

std::int64_t Xoshiro256StarStar::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double threshold = std::exp(-mean);
    std::int64_t count = -1;
    double product = 1.0;
    do {
      ++count;
      product *= uniform();
    } while (product > threshold);
    return count;
  }
  // Normal approximation with continuity correction; clamps at zero. Accurate
  // to well under 1% relative error for the arrival intensities we model.
  const double draw = normal(mean, std::sqrt(mean));
  return std::max<std::int64_t>(0, static_cast<std::int64_t>(std::lround(draw)));
}

bool Xoshiro256StarStar::bernoulli(double p) noexcept {
  return uniform() < std::clamp(p, 0.0, 1.0);
}

Xoshiro256StarStar Xoshiro256StarStar::fork(std::uint64_t stream) noexcept {
  // Derive a child seed by hashing current state with the stream index.
  SplitMix64 mixer(state_[0] ^ rotl(state_[3], 13) ^
                   (stream * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL));
  return Xoshiro256StarStar(mixer());
}

}  // namespace birp::util
