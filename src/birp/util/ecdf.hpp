// Empirical cumulative distribution function collector.
//
// Used to reproduce the inference-completion-time CDFs of Fig. 6a / Fig. 7a.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace birp::util {

/// Accumulates samples and answers CDF / quantile / tail-fraction queries.
/// Samples are kept raw (the experiment scales are modest) and sorted lazily.
class Ecdf {
 public:
  void add(double sample);
  void add_all(std::span<const double> samples);
  void merge(const Ecdf& other);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// P(X <= x). Returns 0 for an empty collector.
  [[nodiscard]] double cdf(double x) const;

  /// Fraction of samples strictly greater than x (e.g. SLO violations).
  [[nodiscard]] double tail_fraction(double x) const;

  /// q-quantile, q in [0,1]. Requires non-empty.
  [[nodiscard]] double quantile(double q) const;

  /// Evaluates the CDF at `points` evenly spaced over [lo, hi] (inclusive).
  /// Returns pairs flattened as (x, F(x)) rows — convenient for plotting.
  struct Point {
    double x = 0.0;
    double f = 0.0;
  };
  [[nodiscard]] std::vector<Point> curve(double lo, double hi,
                                         std::size_t points) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace birp::util
