// Test-only allocation counting.
//
// The serve hot path claims to be allocation-free in steady state; this
// instrument is how that claim is asserted rather than assumed. Targets
// that opt in (serve_test, util_test, bench_serve) compile
// util/alloc_hook.cpp with -DBIRP_COUNT_ALLOCS, which replaces the global
// operator new/delete with forwarding versions that bump the thread-local
// counters declared here. Everything below is always compiled into
// birp_util, so code can query the counters unconditionally;
// alloc_counting_active() reports whether a hook is actually installed in
// this executable (false in production builds, where the counters simply
// stay zero).
//
// Counters are thread-local on purpose: a worker thread measuring its own
// admission loop must not see allocations from other workers or from the
// main thread's bookkeeping. Measure like:
//
//   const auto before = util::alloc_counts();
//   hot_loop();
//   const auto after = util::alloc_counts();   // capture BEFORE asserting:
//   EXPECT_EQ(after.allocs - before.allocs, 0); // gtest itself allocates
#pragma once

#include <cstddef>
#include <cstdint>

namespace birp::util {

struct AllocCounts {
  std::int64_t allocs = 0;  ///< operator new calls on this thread
  std::int64_t frees = 0;   ///< operator delete calls on this thread
  std::int64_t bytes = 0;   ///< total bytes requested on this thread
};

/// Snapshot of this thread's counters since thread start (or the last
/// reset_alloc_counts()). All zeros when no hook is installed.
[[nodiscard]] AllocCounts alloc_counts() noexcept;

/// Zeroes this thread's counters.
void reset_alloc_counts() noexcept;

/// True when alloc_hook.cpp is linked into this executable with
/// BIRP_COUNT_ALLOCS, i.e. the counters actually count.
[[nodiscard]] bool alloc_counting_active() noexcept;

namespace detail {

// The hook's entry points. Plain constinit-style thread locals: operator
// new can run before any dynamic initializer, so these must need none.
extern thread_local std::int64_t tl_allocs;
extern thread_local std::int64_t tl_frees;
extern thread_local std::int64_t tl_bytes;

// Defined (weakly referenced) by alloc_hook.cpp; alloc_counting_active()
// keys off the flag below instead of a link-time symbol so production
// builds need no special linker support.
void set_counting_active() noexcept;

inline void note_alloc(std::size_t bytes) noexcept {
  ++tl_allocs;
  tl_bytes += static_cast<std::int64_t>(bytes);
}
inline void note_free() noexcept { ++tl_frees; }

}  // namespace detail
}  // namespace birp::util
