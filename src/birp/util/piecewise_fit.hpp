// Fits the paper's piecewise TIR curve (Eq. 2):
//
//   TIR(b) = b^eta   for b <= beta      (power-law growth segment)
//   TIR(b) = C       for b >  beta      (saturation segment)
//
// from raw (batch size, observed TIR) samples, exactly as the motivation
// experiment behind Fig. 2 does. The power segment is fit in log-log space
// through the origin (TIR(1) = 1 by definition); the constant segment is the
// mean of the saturated samples; the breakpoint is chosen by exhaustive
// search minimizing total squared error in linear space.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace birp::util {

struct TirSample {
  int batch = 1;     ///< batch size b >= 1
  double tir = 1.0;  ///< observed throughput(b) / throughput(1)
};

struct PiecewiseTirFit {
  double eta = 0.0;      ///< power-law exponent of the growth segment
  int beta = 1;          ///< breakpoint: largest batch on the growth segment
  double c = 1.0;        ///< saturated TIR level
  double sse = 0.0;      ///< total squared error of the fit (linear space)
  double r_squared = 0;  ///< 1 - sse / total sum of squares

  /// Evaluates the fitted curve at batch size b.
  [[nodiscard]] double evaluate(int b) const noexcept;
};

/// Fits the piecewise curve. Requires samples at two or more distinct batch
/// sizes, all with batch >= 1 and tir > 0. Samples may contain repeated
/// batch sizes (e.g. five trials per batch as in the paper).
[[nodiscard]] PiecewiseTirFit fit_piecewise_tir(
    std::span<const TirSample> samples);

}  // namespace birp::util
