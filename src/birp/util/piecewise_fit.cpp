#include "birp/util/piecewise_fit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "birp/util/check.hpp"

namespace birp::util {

double PiecewiseTirFit::evaluate(int b) const noexcept {
  if (b <= beta) return std::pow(static_cast<double>(b), eta);
  return c;
}

namespace {

/// Exponent of y = x^eta through the origin in log space:
/// minimizes sum (log y - eta log x)^2 over samples with x > 1
/// (x == 1 contributes log x == 0 and pins nothing).
double fit_power_exponent(std::span<const TirSample> samples, int max_batch) {
  double num = 0.0;
  double den = 0.0;
  for (const auto& s : samples) {
    if (s.batch > max_batch || s.batch <= 1) continue;
    const double lx = std::log(static_cast<double>(s.batch));
    const double ly = std::log(s.tir);
    num += lx * ly;
    den += lx * lx;
  }
  return den == 0.0 ? 0.0 : num / den;
}

}  // namespace

PiecewiseTirFit fit_piecewise_tir(std::span<const TirSample> samples) {
  check(!samples.empty(), "fit_piecewise_tir: no samples");
  int max_batch = 1;
  double total_mean = 0.0;
  for (const auto& s : samples) {
    check(s.batch >= 1, "fit_piecewise_tir: batch must be >= 1");
    check(s.tir > 0.0, "fit_piecewise_tir: TIR must be positive");
    max_batch = std::max(max_batch, s.batch);
    total_mean += s.tir;
  }
  check(max_batch >= 2, "fit_piecewise_tir: need at least two batch sizes");
  total_mean /= static_cast<double>(samples.size());

  PiecewiseTirFit best;
  best.sse = std::numeric_limits<double>::infinity();

  // Candidate breakpoints: every batch size from 2 to max observed. beta ==
  // max_batch means "no saturation observed"; the constant level is then
  // pinned at beta^eta for continuity.
  for (int beta = 2; beta <= max_batch; ++beta) {
    PiecewiseTirFit candidate;
    candidate.beta = beta;
    candidate.eta = fit_power_exponent(samples, beta);

    // Constant level: mean of the saturated samples, or the continuity value
    // when no sample lies beyond the breakpoint.
    double c_sum = 0.0;
    std::size_t c_count = 0;
    for (const auto& s : samples) {
      if (s.batch > beta) {
        c_sum += s.tir;
        ++c_count;
      }
    }
    candidate.c = c_count > 0
                      ? c_sum / static_cast<double>(c_count)
                      : std::pow(static_cast<double>(beta), candidate.eta);

    double sse = 0.0;
    for (const auto& s : samples) {
      const double d = s.tir - candidate.evaluate(s.batch);
      sse += d * d;
    }
    candidate.sse = sse;
    // Numerical ties prefer the larger breakpoint: at exact continuity the
    // sample at b == beta fits both segments and the growth segment should
    // own it (matches how the paper's Fig. 2 fits are drawn).
    if (sse <= best.sse * (1.0 + 1e-9) + 1e-12) best = candidate;
  }

  double tss = 0.0;
  for (const auto& s : samples) {
    const double d = s.tir - total_mean;
    tss += d * d;
  }
  best.r_squared = tss == 0.0 ? 1.0 : 1.0 - best.sse / tss;
  return best;
}

}  // namespace birp::util
