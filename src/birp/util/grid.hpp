// Small dense 2-D / 3-D arrays with bounds-checked indexing, used for the
// scheduler decision tensors (x, b, y in the paper's notation).
#pragma once

#include <vector>

#include "birp/util/check.hpp"

namespace birp::util {

template <typename T>
class Grid2 {
 public:
  Grid2() = default;
  Grid2(int rows, int cols, T fill = T{})
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              fill) {
    check(rows >= 0 && cols >= 0, "Grid2: negative dimension");
  }

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }

  [[nodiscard]] T& operator()(int r, int c) { return data_[index(r, c)]; }
  [[nodiscard]] const T& operator()(int r, int c) const {
    return data_[index(r, c)];
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }
  [[nodiscard]] const std::vector<T>& raw() const noexcept { return data_; }

 private:
  [[nodiscard]] std::size_t index(int r, int c) const {
    check(r >= 0 && r < rows_ && c >= 0 && c < cols_, "Grid2: out of range");
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(c);
  }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<T> data_;
};

template <typename T>
class Grid3 {
 public:
  Grid3() = default;
  Grid3(int d0, int d1, int d2, T fill = T{})
      : d0_(d0), d1_(d1), d2_(d2),
        data_(static_cast<std::size_t>(d0) * static_cast<std::size_t>(d1) *
                  static_cast<std::size_t>(d2),
              fill) {
    check(d0 >= 0 && d1 >= 0 && d2 >= 0, "Grid3: negative dimension");
  }

  [[nodiscard]] int dim0() const noexcept { return d0_; }
  [[nodiscard]] int dim1() const noexcept { return d1_; }
  [[nodiscard]] int dim2() const noexcept { return d2_; }

  [[nodiscard]] T& operator()(int a, int b, int c) {
    return data_[index(a, b, c)];
  }
  [[nodiscard]] const T& operator()(int a, int b, int c) const {
    return data_[index(a, b, c)];
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }
  [[nodiscard]] const std::vector<T>& raw() const noexcept { return data_; }

 private:
  [[nodiscard]] std::size_t index(int a, int b, int c) const {
    check(a >= 0 && a < d0_ && b >= 0 && b < d1_ && c >= 0 && c < d2_,
          "Grid3: out of range");
    return (static_cast<std::size_t>(a) * static_cast<std::size_t>(d1_) +
            static_cast<std::size_t>(b)) *
               static_cast<std::size_t>(d2_) +
           static_cast<std::size_t>(c);
  }

  int d0_ = 0;
  int d1_ = 0;
  int d2_ = 0;
  std::vector<T> data_;
};

}  // namespace birp::util
