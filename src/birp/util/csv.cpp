#include "birp/util/csv.hpp"

#include <charconv>
#include <cmath>

namespace birp::util {
namespace {

bool needs_quoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

}  // namespace

void CsvWriter::write_field(std::string_view field, bool first) {
  if (!first) *out_ << ',';
  if (!needs_quoting(field)) {
    *out_ << field;
    return;
  }
  *out_ << '"';
  for (const char c : field) {
    if (c == '"') *out_ << '"';
    *out_ << c;
  }
  *out_ << '"';
}

void CsvWriter::row(std::initializer_list<std::string_view> fields) {
  bool first = true;
  for (const auto field : fields) {
    write_field(field, first);
    first = false;
  }
  *out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& field : fields) {
    write_field(field, first);
    first = false;
  }
  *out_ << '\n';
}

void CsvWriter::numeric_row(std::initializer_list<double> values) {
  bool first = true;
  for (const double v : values) {
    write_field(format_double(v), first);
    first = false;
  }
  *out_ << '\n';
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // next field exists even if empty
        break;
      case '\r':
        break;  // swallow; \n handles the row end
      case '\n':
        end_row();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

std::string format_double(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[64];
  const auto result =
      std::to_chars(buffer, buffer + sizeof(buffer), value,
                    std::chars_format::general, 17);
  return std::string(buffer, result.ptr);
}

}  // namespace birp::util
