// Console table printer: the benchmark harnesses print paper tables/figure
// series as aligned text so `bench/*` output is directly comparable to the
// paper's rows.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace birp::util {

/// Collects rows and renders an aligned, boxed text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with fixed precision.
  void add_numeric_row(const std::vector<double>& values, int precision = 3);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders to `out` with a title line above the table.
  void print(std::ostream& out, const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting helper.
[[nodiscard]] std::string fixed(double value, int precision = 3);

}  // namespace birp::util
