
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/solver_test.cpp" "tests/CMakeFiles/solver_test.dir/solver_test.cpp.o" "gcc" "tests/CMakeFiles/solver_test.dir/solver_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/birp/predictor/CMakeFiles/birp_predictor.dir/DependInfo.cmake"
  "/root/repo/build/src/birp/sched/CMakeFiles/birp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/birp/core/CMakeFiles/birp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/birp/solver/CMakeFiles/birp_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/birp/sim/CMakeFiles/birp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/birp/workload/CMakeFiles/birp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/birp/device/CMakeFiles/birp_device.dir/DependInfo.cmake"
  "/root/repo/build/src/birp/model/CMakeFiles/birp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/birp/runtime/CMakeFiles/birp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/birp/metrics/CMakeFiles/birp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/birp/util/CMakeFiles/birp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
