file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_linearization.dir/bench_ablation_linearization.cpp.o"
  "CMakeFiles/bench_ablation_linearization.dir/bench_ablation_linearization.cpp.o.d"
  "bench_ablation_linearization"
  "bench_ablation_linearization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_linearization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
