# Empty compiler generated dependencies file for bench_ablation_linearization.
# This may be replaced when dependencies are built.
