# Empty dependencies file for bench_ablation_mab.
# This may be replaced when dependencies are built.
