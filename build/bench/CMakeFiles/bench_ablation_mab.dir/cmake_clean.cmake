file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mab.dir/bench_ablation_mab.cpp.o"
  "CMakeFiles/bench_ablation_mab.dir/bench_ablation_mab.cpp.o.d"
  "bench_ablation_mab"
  "bench_ablation_mab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
