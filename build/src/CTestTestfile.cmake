# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("birp/util")
subdirs("birp/solver")
subdirs("birp/model")
subdirs("birp/device")
subdirs("birp/workload")
subdirs("birp/predictor")
subdirs("birp/runtime")
subdirs("birp/metrics")
subdirs("birp/sim")
subdirs("birp/core")
subdirs("birp/sched")
