file(REMOVE_RECURSE
  "libbirp_core.a"
)
