# Empty dependencies file for birp_core.
# This may be replaced when dependencies are built.
