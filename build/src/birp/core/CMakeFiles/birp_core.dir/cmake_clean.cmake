file(REMOVE_RECURSE
  "CMakeFiles/birp_core.dir/birp_scheduler.cpp.o"
  "CMakeFiles/birp_core.dir/birp_scheduler.cpp.o.d"
  "CMakeFiles/birp_core.dir/problem.cpp.o"
  "CMakeFiles/birp_core.dir/problem.cpp.o.d"
  "CMakeFiles/birp_core.dir/tir_estimator.cpp.o"
  "CMakeFiles/birp_core.dir/tir_estimator.cpp.o.d"
  "libbirp_core.a"
  "libbirp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
