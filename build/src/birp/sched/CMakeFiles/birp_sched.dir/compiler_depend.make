# Empty compiler generated dependencies file for birp_sched.
# This may be replaced when dependencies are built.
