file(REMOVE_RECURSE
  "CMakeFiles/birp_sched.dir/greedy_local.cpp.o"
  "CMakeFiles/birp_sched.dir/greedy_local.cpp.o.d"
  "CMakeFiles/birp_sched.dir/max_batch.cpp.o"
  "CMakeFiles/birp_sched.dir/max_batch.cpp.o.d"
  "CMakeFiles/birp_sched.dir/no_redist.cpp.o"
  "CMakeFiles/birp_sched.dir/no_redist.cpp.o.d"
  "CMakeFiles/birp_sched.dir/oaei.cpp.o"
  "CMakeFiles/birp_sched.dir/oaei.cpp.o.d"
  "libbirp_sched.a"
  "libbirp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
