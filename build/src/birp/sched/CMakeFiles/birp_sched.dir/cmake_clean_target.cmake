file(REMOVE_RECURSE
  "libbirp_sched.a"
)
