file(REMOVE_RECURSE
  "CMakeFiles/birp_model.dir/zoo.cpp.o"
  "CMakeFiles/birp_model.dir/zoo.cpp.o.d"
  "libbirp_model.a"
  "libbirp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
