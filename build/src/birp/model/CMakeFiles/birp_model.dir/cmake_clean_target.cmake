file(REMOVE_RECURSE
  "libbirp_model.a"
)
