# Empty dependencies file for birp_model.
# This may be replaced when dependencies are built.
