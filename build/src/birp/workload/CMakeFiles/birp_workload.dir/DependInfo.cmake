
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/birp/workload/generator.cpp" "src/birp/workload/CMakeFiles/birp_workload.dir/generator.cpp.o" "gcc" "src/birp/workload/CMakeFiles/birp_workload.dir/generator.cpp.o.d"
  "/root/repo/src/birp/workload/trace.cpp" "src/birp/workload/CMakeFiles/birp_workload.dir/trace.cpp.o" "gcc" "src/birp/workload/CMakeFiles/birp_workload.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/birp/util/CMakeFiles/birp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/birp/device/CMakeFiles/birp_device.dir/DependInfo.cmake"
  "/root/repo/build/src/birp/model/CMakeFiles/birp_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
