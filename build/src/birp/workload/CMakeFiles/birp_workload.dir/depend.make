# Empty dependencies file for birp_workload.
# This may be replaced when dependencies are built.
