file(REMOVE_RECURSE
  "libbirp_workload.a"
)
