file(REMOVE_RECURSE
  "CMakeFiles/birp_workload.dir/generator.cpp.o"
  "CMakeFiles/birp_workload.dir/generator.cpp.o.d"
  "CMakeFiles/birp_workload.dir/trace.cpp.o"
  "CMakeFiles/birp_workload.dir/trace.cpp.o.d"
  "libbirp_workload.a"
  "libbirp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
