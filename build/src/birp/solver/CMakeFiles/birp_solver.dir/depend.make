# Empty dependencies file for birp_solver.
# This may be replaced when dependencies are built.
