file(REMOVE_RECURSE
  "libbirp_solver.a"
)
