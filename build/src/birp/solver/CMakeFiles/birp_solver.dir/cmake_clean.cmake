file(REMOVE_RECURSE
  "CMakeFiles/birp_solver.dir/branch_and_bound.cpp.o"
  "CMakeFiles/birp_solver.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/birp_solver.dir/model.cpp.o"
  "CMakeFiles/birp_solver.dir/model.cpp.o.d"
  "CMakeFiles/birp_solver.dir/simplex.cpp.o"
  "CMakeFiles/birp_solver.dir/simplex.cpp.o.d"
  "libbirp_solver.a"
  "libbirp_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birp_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
