file(REMOVE_RECURSE
  "CMakeFiles/birp_predictor.dir/latency_predictor.cpp.o"
  "CMakeFiles/birp_predictor.dir/latency_predictor.cpp.o.d"
  "libbirp_predictor.a"
  "libbirp_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birp_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
