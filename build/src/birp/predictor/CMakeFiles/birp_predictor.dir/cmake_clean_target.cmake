file(REMOVE_RECURSE
  "libbirp_predictor.a"
)
