# Empty compiler generated dependencies file for birp_predictor.
# This may be replaced when dependencies are built.
