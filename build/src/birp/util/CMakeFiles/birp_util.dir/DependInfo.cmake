
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/birp/util/csv.cpp" "src/birp/util/CMakeFiles/birp_util.dir/csv.cpp.o" "gcc" "src/birp/util/CMakeFiles/birp_util.dir/csv.cpp.o.d"
  "/root/repo/src/birp/util/ecdf.cpp" "src/birp/util/CMakeFiles/birp_util.dir/ecdf.cpp.o" "gcc" "src/birp/util/CMakeFiles/birp_util.dir/ecdf.cpp.o.d"
  "/root/repo/src/birp/util/piecewise_fit.cpp" "src/birp/util/CMakeFiles/birp_util.dir/piecewise_fit.cpp.o" "gcc" "src/birp/util/CMakeFiles/birp_util.dir/piecewise_fit.cpp.o.d"
  "/root/repo/src/birp/util/rng.cpp" "src/birp/util/CMakeFiles/birp_util.dir/rng.cpp.o" "gcc" "src/birp/util/CMakeFiles/birp_util.dir/rng.cpp.o.d"
  "/root/repo/src/birp/util/stats.cpp" "src/birp/util/CMakeFiles/birp_util.dir/stats.cpp.o" "gcc" "src/birp/util/CMakeFiles/birp_util.dir/stats.cpp.o.d"
  "/root/repo/src/birp/util/table.cpp" "src/birp/util/CMakeFiles/birp_util.dir/table.cpp.o" "gcc" "src/birp/util/CMakeFiles/birp_util.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
