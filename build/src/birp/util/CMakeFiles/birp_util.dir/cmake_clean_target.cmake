file(REMOVE_RECURSE
  "libbirp_util.a"
)
