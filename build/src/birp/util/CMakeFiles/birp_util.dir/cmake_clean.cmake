file(REMOVE_RECURSE
  "CMakeFiles/birp_util.dir/csv.cpp.o"
  "CMakeFiles/birp_util.dir/csv.cpp.o.d"
  "CMakeFiles/birp_util.dir/ecdf.cpp.o"
  "CMakeFiles/birp_util.dir/ecdf.cpp.o.d"
  "CMakeFiles/birp_util.dir/piecewise_fit.cpp.o"
  "CMakeFiles/birp_util.dir/piecewise_fit.cpp.o.d"
  "CMakeFiles/birp_util.dir/rng.cpp.o"
  "CMakeFiles/birp_util.dir/rng.cpp.o.d"
  "CMakeFiles/birp_util.dir/stats.cpp.o"
  "CMakeFiles/birp_util.dir/stats.cpp.o.d"
  "CMakeFiles/birp_util.dir/table.cpp.o"
  "CMakeFiles/birp_util.dir/table.cpp.o.d"
  "libbirp_util.a"
  "libbirp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
