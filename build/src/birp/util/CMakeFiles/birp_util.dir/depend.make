# Empty dependencies file for birp_util.
# This may be replaced when dependencies are built.
