file(REMOVE_RECURSE
  "CMakeFiles/birp_runtime.dir/parallel_for.cpp.o"
  "CMakeFiles/birp_runtime.dir/parallel_for.cpp.o.d"
  "CMakeFiles/birp_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/birp_runtime.dir/thread_pool.cpp.o.d"
  "libbirp_runtime.a"
  "libbirp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
