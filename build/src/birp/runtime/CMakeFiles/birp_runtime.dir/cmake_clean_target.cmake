file(REMOVE_RECURSE
  "libbirp_runtime.a"
)
