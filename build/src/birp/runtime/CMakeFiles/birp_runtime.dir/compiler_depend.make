# Empty compiler generated dependencies file for birp_runtime.
# This may be replaced when dependencies are built.
