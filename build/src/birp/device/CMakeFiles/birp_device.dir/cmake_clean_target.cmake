file(REMOVE_RECURSE
  "libbirp_device.a"
)
