file(REMOVE_RECURSE
  "CMakeFiles/birp_device.dir/cluster.cpp.o"
  "CMakeFiles/birp_device.dir/cluster.cpp.o.d"
  "CMakeFiles/birp_device.dir/profile.cpp.o"
  "CMakeFiles/birp_device.dir/profile.cpp.o.d"
  "CMakeFiles/birp_device.dir/tir.cpp.o"
  "CMakeFiles/birp_device.dir/tir.cpp.o.d"
  "CMakeFiles/birp_device.dir/truth.cpp.o"
  "CMakeFiles/birp_device.dir/truth.cpp.o.d"
  "libbirp_device.a"
  "libbirp_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birp_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
