
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/birp/device/cluster.cpp" "src/birp/device/CMakeFiles/birp_device.dir/cluster.cpp.o" "gcc" "src/birp/device/CMakeFiles/birp_device.dir/cluster.cpp.o.d"
  "/root/repo/src/birp/device/profile.cpp" "src/birp/device/CMakeFiles/birp_device.dir/profile.cpp.o" "gcc" "src/birp/device/CMakeFiles/birp_device.dir/profile.cpp.o.d"
  "/root/repo/src/birp/device/tir.cpp" "src/birp/device/CMakeFiles/birp_device.dir/tir.cpp.o" "gcc" "src/birp/device/CMakeFiles/birp_device.dir/tir.cpp.o.d"
  "/root/repo/src/birp/device/truth.cpp" "src/birp/device/CMakeFiles/birp_device.dir/truth.cpp.o" "gcc" "src/birp/device/CMakeFiles/birp_device.dir/truth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/birp/util/CMakeFiles/birp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/birp/model/CMakeFiles/birp_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
