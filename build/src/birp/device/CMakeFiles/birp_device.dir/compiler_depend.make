# Empty compiler generated dependencies file for birp_device.
# This may be replaced when dependencies are built.
