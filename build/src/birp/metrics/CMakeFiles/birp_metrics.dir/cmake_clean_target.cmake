file(REMOVE_RECURSE
  "libbirp_metrics.a"
)
