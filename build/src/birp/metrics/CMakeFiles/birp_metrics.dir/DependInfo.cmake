
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/birp/metrics/report_csv.cpp" "src/birp/metrics/CMakeFiles/birp_metrics.dir/report_csv.cpp.o" "gcc" "src/birp/metrics/CMakeFiles/birp_metrics.dir/report_csv.cpp.o.d"
  "/root/repo/src/birp/metrics/run_metrics.cpp" "src/birp/metrics/CMakeFiles/birp_metrics.dir/run_metrics.cpp.o" "gcc" "src/birp/metrics/CMakeFiles/birp_metrics.dir/run_metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/birp/util/CMakeFiles/birp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
