# Empty compiler generated dependencies file for birp_metrics.
# This may be replaced when dependencies are built.
