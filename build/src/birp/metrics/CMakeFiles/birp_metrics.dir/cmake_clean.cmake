file(REMOVE_RECURSE
  "CMakeFiles/birp_metrics.dir/report_csv.cpp.o"
  "CMakeFiles/birp_metrics.dir/report_csv.cpp.o.d"
  "CMakeFiles/birp_metrics.dir/run_metrics.cpp.o"
  "CMakeFiles/birp_metrics.dir/run_metrics.cpp.o.d"
  "libbirp_metrics.a"
  "libbirp_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birp_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
