# Empty dependencies file for birp_sim.
# This may be replaced when dependencies are built.
