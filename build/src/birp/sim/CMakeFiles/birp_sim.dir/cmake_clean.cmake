file(REMOVE_RECURSE
  "CMakeFiles/birp_sim.dir/decision.cpp.o"
  "CMakeFiles/birp_sim.dir/decision.cpp.o.d"
  "CMakeFiles/birp_sim.dir/simulator.cpp.o"
  "CMakeFiles/birp_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/birp_sim.dir/validate.cpp.o"
  "CMakeFiles/birp_sim.dir/validate.cpp.o.d"
  "libbirp_sim.a"
  "libbirp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
