file(REMOVE_RECURSE
  "libbirp_sim.a"
)
